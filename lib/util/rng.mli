(** Deterministic pseudo-random number generation (xoshiro256** seeded via
    splitmix64). All stochastic components of the toolkit draw randomness
    through an explicit [t], so every experiment replays bit-identically
    from its seed.

    The state is native-int arithmetic throughout: every accessor except
    [next_int64] is allocation-free, so hot loops (bit-parallel pattern
    sampling, per-trace noise) can draw without GC pressure. *)

type t

val create : int -> t

(** Raw 64-bit step of the generator (boxed return). *)
val next_int64 : t -> int64

(** The next draw truncated to a native int: identical stream and value as
    [Int64.to_int (next_int64 t)] but allocation-free. Yields one 63-slot
    word for the bit-parallel simulators. *)
val bits63 : t -> int

(** Uniform in [0, bound). @raise Assert_failure when [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform float in [0, 1). *)
val float : t -> float

(** Standard normal (Box–Muller). *)
val gaussian : t -> float

val gaussian_scaled : t -> mean:float -> sigma:float -> float

(** Fisher–Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit

(** [sample t k n] draws [k] distinct indices from [0, n). *)
val sample : t -> int -> int -> int array

(** Pick one element. @raise Invalid_argument on an empty list. *)
val choose : t -> 'a list -> 'a

(** [split t n] derives [n] independent child streams, advancing [t] by
    [n] draws. Reproducible: the same parent state always yields the same
    children. Used for deterministic parallel fan-out — task [i] draws
    from stream [i] no matter which domain executes it.
    @raise Invalid_argument when [n < 0]. *)
val split : t -> int -> t array
