(** Cooperative resource budgets for long-running engines.

    Security metrics are step functions: a silently-truncated SAT attack or
    ATPG run reports a number that looks like a measurement but is not one.
    Every engine in the toolkit therefore takes an optional budget and, when
    it cannot conclude within it, says so explicitly ([Unknown], partial
    coverage, degradation notes) instead of hanging or lying.

    A budget combines a step allowance (engine-defined unit: solver
    conflicts, annealing moves, faults processed) with a wall-clock
    deadline, plus an external cancellation flag. Budgets compose: a
    sub-budget may be tighter than its parent, and every step charged to a
    sub-budget is also charged to its ancestors, so a flow-level budget is
    honoured no matter how stages split it up.

    Checks are cooperative: engines call [tick]/[check] at their natural
    checkpoints (per conflict, per move, per fault). The clock is pluggable
    for deterministic tests. *)

type exhaustion =
  | Out_of_steps
  | Deadline_passed
  | Cancelled

let describe_exhaustion = function
  | Out_of_steps -> "step budget exhausted"
  | Deadline_passed -> "deadline exceeded"
  | Cancelled -> "cancelled"

type t = {
  parent : t option;
  steps_initial : int option;  (* the allowance at creation, for utilization *)
  mutable steps_left : int option;  (* [None] = unlimited *)
  mutable steps_used : int;  (* total charged, tracked even when unlimited *)
  deadline : float option;  (* absolute time in [clock] units *)
  clock : unit -> float;
  started : float;
  mutable cancelled : bool;
  poll : (unit -> bool) option;  (* external cancellation probe, e.g. a pool's stop flag *)
}

let default_clock = Sys.time

(** [create ?clock ?steps ?seconds ?poll ()] — a root budget. Omitted
    limits are unlimited; [create ()] never exhausts (useful as a neutral
    default). [poll], when given, is probed at every [status] check and
    reads as [Cancelled] once it returns [true] — the hook a worker-pool
    task budget uses to observe the batch-wide stop flag. *)
let create ?(clock = default_clock) ?steps ?seconds ?poll () =
  let now = clock () in
  { parent = None;
    steps_initial = steps;
    steps_left = steps;
    steps_used = 0;
    deadline = Option.map (fun s -> now +. s) seconds;
    clock;
    started = now;
    cancelled = false;
    poll }

let unlimited () = create ()

(** Sub-budget: at most [steps]/[seconds] of its own, and never more than
    what remains of any ancestor. Charging the child charges the chain. *)
let sub ?steps ?seconds ?poll t =
  let now = t.clock () in
  { parent = Some t;
    steps_initial = steps;
    steps_left = steps;
    steps_used = 0;
    deadline = Option.map (fun s -> now +. s) seconds;
    clock = t.clock;
    started = now;
    cancelled = false;
    poll }

(** Request cooperative cancellation; observed at the next [check]. *)
let cancel t = t.cancelled <- true

(** Why the budget is exhausted, or [None] while work may continue. Checks
    the whole ancestor chain. *)
let rec status t =
  if t.cancelled || (match t.poll with Some probe -> probe () | None -> false) then
    Some Cancelled
  else
    match t.steps_left with
    | Some n when n <= 0 -> Some Out_of_steps
    | _ ->
      (match t.deadline with
       | Some d when t.clock () >= d -> Some Deadline_passed
       | _ -> (match t.parent with Some p -> status p | None -> None))

let exhausted t = status t <> None

let check t = match status t with None -> Ok () | Some e -> Error e

(** Charge [cost] steps to this budget and every ancestor. *)
let rec tick ?(cost = 1) t =
  t.steps_used <- t.steps_used + cost;
  (match t.steps_left with
   | Some n -> t.steps_left <- Some (n - cost)
   | None -> ());
  match t.parent with Some p -> tick ~cost p | None -> ()

(** [tick] then [check]; the common per-iteration call. *)
let spend ?cost t =
  tick ?cost t;
  check t

let remaining_steps t = t.steps_left

let elapsed t = t.clock () -. t.started

(** Steps charged to this budget so far (tracked even when the step
    allowance is unlimited). *)
let consumed_steps t = t.steps_used

(** Fraction of the step allowance spent, clamped to [0, 1]; [None] when
    steps are unlimited. *)
let step_fraction t =
  Option.map
    (fun total ->
      if total <= 0 then 1.0
      else Float.min 1.0 (Float.of_int t.steps_used /. Float.of_int total))
    t.steps_initial

(** Fraction of the wall-clock allowance elapsed, clamped to [0, 1];
    [None] when there is no deadline. *)
let time_fraction t =
  Option.map
    (fun deadline ->
      let allowed = deadline -. t.started in
      if allowed <= 0.0 then 1.0 else Float.min 1.0 (elapsed t /. allowed))
    t.deadline

(** Utilization along the most-constrained dimension (max of step and
    time fractions); [None] when the budget is unlimited in both — an
    unlimited budget is never "x% used". Telemetry reports this per
    span so degradation can be read as budget pressure, not mystery. *)
let utilization t =
  match step_fraction t, time_fraction t with
  | None, None -> None
  | Some f, None | None, Some f -> Some f
  | Some a, Some b -> Some (Float.max a b)

(** [1 - utilization]; [None] when unlimited. *)
let remaining_fraction t = Option.map (fun u -> 1.0 -. u) (utilization t)

(** Human-readable summary for reports and CLI output. *)
let describe t =
  let steps =
    match t.steps_left with
    | None -> "steps unlimited"
    | Some n -> Printf.sprintf "%d steps left" (max 0 n)
  in
  let time =
    match t.deadline with
    | None -> "no deadline"
    | Some d -> Printf.sprintf "%.3fs to deadline" (d -. t.clock ())
  in
  Printf.sprintf "%s, %s" steps time
