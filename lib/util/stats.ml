(** Statistical primitives used across leakage assessment, PUF metrics and
    attack evaluation: online moments, Welch's t-test, Pearson correlation,
    simple histograms and entropy estimates. *)

type moments = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations, Welford *)
  mutable vmin : float;  (* smallest observation; +inf while empty *)
  mutable vmax : float;  (* largest observation; -inf while empty *)
}

let moments_create () =
  { n = 0; mean = 0.0; m2 = 0.0; vmin = Float.infinity; vmax = Float.neg_infinity }

let moments_add m x =
  m.n <- m.n + 1;
  let delta = x -. m.mean in
  m.mean <- m.mean +. (delta /. Float.of_int m.n);
  m.m2 <- m.m2 +. (delta *. (x -. m.mean));
  if x < m.vmin then m.vmin <- x;
  if x > m.vmax then m.vmax <- x

let moments_mean m = m.mean

let moments_variance m = if m.n < 2 then 0.0 else m.m2 /. Float.of_int (m.n - 1)

(** Merge two Welford accumulators into a fresh one (Chan et al.'s
    pairwise update). Merging partial accumulators in a fixed order gives
    the same moments regardless of how the underlying samples were
    batched, which is what makes parallel TVLA reductions deterministic. *)
let moments_merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2; vmin = b.vmin; vmax = b.vmax }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2; vmin = a.vmin; vmax = a.vmax }
  else begin
    let n = a.n + b.n in
    let fa = Float.of_int a.n and fb = Float.of_int b.n and fn = Float.of_int n in
    let delta = b.mean -. a.mean in
    { n;
      mean = a.mean +. (delta *. fb /. fn);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn);
      vmin = Float.min a.vmin b.vmin;
      vmax = Float.max a.vmax b.vmax }
  end

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. Float.of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mu = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs in
    acc /. Float.of_int (n - 1)
  end

let std xs = sqrt (variance xs)

(** Welch's t statistic between two samples; the TVLA decision statistic.
    Returns 0 when either sample is degenerate. *)
let welch_t xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx < 2 || ny < 2 then 0.0
  else begin
    let vx = variance xs /. Float.of_int nx in
    let vy = variance ys /. Float.of_int ny in
    let denom = sqrt (vx +. vy) in
    if denom <= 0.0 then 0.0 else (mean xs -. mean ys) /. denom
  end

(** Welch's t from two moment accumulators — same statistic as {!welch_t}
    on the raw samples, computed streamingly. Returns 0 when either side
    is degenerate, mirroring [welch_t]. *)
let welch_t_moments ma mb =
  if ma.n < 2 || mb.n < 2 then 0.0
  else begin
    let va = moments_variance ma /. Float.of_int ma.n in
    let vb = moments_variance mb /. Float.of_int mb.n in
    let denom = sqrt (va +. vb) in
    if denom <= 0.0 then 0.0 else (ma.mean -. mb.mean) /. denom
  end

(** Welch-Satterthwaite degrees of freedom, for completeness of reporting. *)
let welch_df xs ys =
  let nx = Float.of_int (Array.length xs) and ny = Float.of_int (Array.length ys) in
  let vx = variance xs /. nx and vy = variance ys /. ny in
  let num = (vx +. vy) ** 2.0 in
  let den = ((vx ** 2.0) /. (nx -. 1.0)) +. ((vy ** 2.0) /. (ny -. 1.0)) in
  if den <= 0.0 then 1.0 else num /. den

(** Pearson correlation coefficient; the CPA decision statistic. *)
let pearson xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys);
  if n < 2 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    let denom = sqrt (!sxx *. !syy) in
    if denom <= 0.0 then 0.0 else !sxy /. denom
  end

(** Population count of all 63 bits of a native int. Branch-free SWAR on
    32-bit halves (64-bit mask literals would wrap on OCaml's 63-bit
    ints), no allocation — safe to call per net word in simulation
    sweeps. *)
let popcount x =
  let half v =
    let v = v - ((v lsr 1) land 0x55555555) in
    let v = (v land 0x33333333) + ((v lsr 2) land 0x33333333) in
    let v = (v + (v lsr 4)) land 0x0F0F0F0F in
    (* the byte-sum multiply needs an explicit mask: OCaml ints do not
       truncate at 32 bits, so the higher partial products survive *)
    ((v * 0x01010101) lsr 24) land 0xFF
  in
  half (x land 0xFFFFFFFF) + half (x lsr 32)

(** Hamming weight of the low [bits] bits of [x]. *)
let hamming_weight ?(bits = 64) x =
  if bits >= 63 then popcount x else popcount (x land ((1 lsl bits) - 1))

let hamming_distance ?(bits = 64) x y = hamming_weight ~bits (x lxor y)

(** Shannon entropy (bits) of an empirical distribution given as counts. *)
let entropy_of_counts counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else begin
          let p = Float.of_int c /. Float.of_int total in
          acc -. (p *. (log p /. log 2.0))
        end)
      0.0 counts

(** Histogram of integer observations into [nbins] equal bins over
    [lo, hi). Out-of-range samples are clamped into the edge bins. *)
let histogram ~nbins ~lo ~hi xs =
  assert (nbins > 0 && hi > lo);
  let counts = Array.make nbins 0 in
  let width = (hi -. lo) /. Float.of_int nbins in
  let place x =
    let b = Float.to_int ((x -. lo) /. width) in
    let b = if b < 0 then 0 else if b >= nbins then nbins - 1 else b in
    counts.(b) <- counts.(b) + 1
  in
  Array.iter place xs;
  counts

(** Max absolute value of an array; used for per-sample TVLA summaries. *)
let max_abs xs = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 xs

(** Simple argmax over an array; returns index of first maximum. *)
let argmax xs =
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) > xs.(!best) then best := i
  done;
  !best

(** Two-proportion success-rate summary used by attack benchmarks. *)
let success_rate successes trials =
  if trials = 0 then 0.0 else Float.of_int successes /. Float.of_int trials
