(** Fixed-size [Domain.t] worker pool with deterministic reduction.

    The engines this pool serves (ATPG fault fan-out, TVLA trace batches,
    multi-start placement, SAT-attack portfolios) are loops over
    independent tasks. The pool runs those tasks on [size] domains — the
    calling domain participates as slot 0, [size - 1] spawned domains
    fill the rest — while keeping every *result* independent of the
    domain count:

    - {b ordered reduction}: [parallel_map] returns results positionally,
      so downstream folds see task [i]'s result at index [i] no matter
      which domain ran it or when it finished;
    - {b per-task randomness}: callers split their generator with
      {!Rng.split} and hand stream [i] to task [i]; no generator is ever
      shared across tasks;
    - {b cooperative cancellation}: an atomic stop flag is set when the
      caller's {!Budget} reports exhaustion (polled on slot 0 between
      tasks), when any task raises, or when a {!race} wins. Unstarted
      tasks are skipped ([None]); running tasks can observe the flag via
      [ctx.cancelled] or a polling [ctx.task_budget]. All domains are
      joined before any call returns — a cancelled batch still leaves the
      pool reusable.

    Telemetry is ambient per domain; worker domains start without the
    caller's context, so each task instead runs under a private capture
    context ({!Telemetry.capture_task}): everything the task records is
    buffered in a [pool.task] span tagged with [task]/[domain]
    attributes, and after the join the buffers are merged into the
    caller's trace in task-index order ({!Telemetry.absorb}) — span ids
    remapped, worker spans reparented under the dispatching [pool.batch]
    span. Deterministic workloads merge bit-identically at any pool size
    once {!Telemetry.Trace.canonicalize} drops scheduling noise. The
    pool also reports scheduling metrics from the caller's domain:
    [pool.tasks] and [pool.steals] counters, a [pool.utilization] gauge
    (busy time / (elapsed x domains)) and a [pool.domain] note per slot
    with its task/steal/busy breakdown, all stamped from one clock
    reading per batch.

    The pool is not reentrant (no pool calls from inside tasks) and
    serves one calling domain at a time. *)

type t

(** What a task knows about its execution context. *)
type task_ctx = {
  task_index : int;  (** index of this task in the submitted batch *)
  slot : int;  (** executing slot, 0 = the calling domain *)
  cancelled : unit -> bool;  (** true once the batch is stopping *)
  task_budget : ?steps:int -> ?seconds:float -> unit -> Budget.t;
      (** fresh per-task budget (wall-clock based) whose [status] also
          reads as [Cancelled] once the batch stops — hand it to solver
          calls so they abort promptly on cancellation *)
}

(** [create ?num_domains ()] spawns the pool. [num_domains] defaults to
    [Domain.recommended_domain_count ()] and is clamped to [1, 64]. A
    pool of size 1 spawns no domains and runs every task inline on the
    caller — same code path, zero parallelism, ambient telemetry intact. *)
val create : ?num_domains:int -> unit -> t

val size : t -> int

(** Join all worker domains. Idempotent; the pool must not be used
    afterwards. *)
val shutdown : t -> unit

(** [with_pool ?num_domains f] — create, run [f], always shut down. *)
val with_pool : ?num_domains:int -> (t -> 'a) -> 'a

(** Pool size implied by the environment: [SECURE_EDA_JOBS] when set to
    a positive integer, else 1. The CLI [-j] default and the test suite
    read this, so exporting the variable widens every run at once. *)
val default_jobs : unit -> int

(** [parallel_map ?budget ?label ?chunk t ~f inputs] runs
    [f ctx inputs.(i)] for every [i] and returns the results in input
    order. [None] marks a task skipped by cancellation. If a task
    raises, the batch stops, all domains are joined, and the
    lowest-index exception is re-raised. [budget] is only polled for
    exhaustion — the pool never charges it; engines account their own
    steps on the calling domain.

    [chunk] (default 1) is the scheduling grain: each atomic claim takes
    up to [chunk] consecutive tasks, amortizing per-claim bookkeeping
    when tasks are tiny. Chunking affects scheduling only — which domain
    runs what — never results: the result array is positional and the
    stop flag is still polled before every task. Steals stay grain-1 so
    the tail rebalances. Raise it (e.g. [tasks / (4 * size)]) when tasks
    are microseconds; leave it at 1 when tasks are chunky or wildly
    uneven. *)
val parallel_map :
  ?budget:Budget.t ->
  ?label:string ->
  ?chunk:int ->
  t ->
  f:(task_ctx -> 'a -> 'b) ->
  'a array ->
  'b option array

(** Crash-isolating variant of {!parallel_map}: a task that raises
    yields [Some (Error exn)] at its own index and the rest of the batch
    keeps running — one crash never cancels its siblings and nothing is
    re-raised. [None] still marks tasks skipped because the [budget]
    exhausted (or an external cancel fired) before they started. The
    join is unconditional: the call returns only after every domain has
    finished its last task, so the pool is always reusable afterwards —
    the substrate the supervised job engine ({!module:Service} in the
    main library) builds on. *)
val parallel_try_map :
  ?budget:Budget.t ->
  ?label:string ->
  ?chunk:int ->
  t ->
  f:(task_ctx -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result option array

(** [parallel_map] followed by an ordered left fold over the present
    results — the reduction order (and so the result) is independent of
    the domain count. *)
val parallel_reduce :
  ?budget:Budget.t ->
  ?label:string ->
  ?chunk:int ->
  t ->
  f:(task_ctx -> 'a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc

(** First-result-wins: run [f] over the inputs until some task returns
    [Some v]; the win stops the batch (losers observe [ctx.cancelled] /
    their task budgets), all domains are joined, and [(winner_index, v)]
    is returned. [None] when every task declined or was skipped. Which
    member wins a close race is timing-dependent by nature — use only
    where any winner is acceptable (portfolio solving). *)
val race :
  ?budget:Budget.t ->
  ?label:string ->
  t ->
  f:(task_ctx -> 'a -> 'b option) ->
  'a array ->
  (int * 'b) option
