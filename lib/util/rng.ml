(** Deterministic pseudo-random number generation.

    All stochastic components of the toolkit draw randomness through an
    explicit [t] so that every experiment is reproducible from a seed.
    The generator is xoshiro256** seeded through splitmix64, implemented
    from the public-domain reference algorithms.

    The 256-bit state is stored as eight native ints (32-bit halves), and
    one step is pure immediate-int arithmetic: drawing via [bits63],
    [bool], [int] or [float] allocates nothing, which matters in the
    bit-parallel simulation and sampling hot loops that draw one word per
    pattern batch. Only [next_int64] boxes (once, for its return value).
    The stream is bit-identical to the boxed Int64 formulation — a
    differential test against it guards every derived draw. *)

(* Each 64-bit state word w is split as (hi, lo) with hi = w >> 32 and
   lo = w & 0xFFFFFFFF, both in [0, 2^32). [r_hi]/[r_lo] hold the halves
   of the latest scrambled output so the typed accessors below can read
   the exact bits they need without a 64-bit return value. *)
type t = {
  mutable s0h : int; mutable s0l : int;
  mutable s1h : int; mutable s1l : int;
  mutable s2h : int; mutable s2l : int;
  mutable s3h : int; mutable s3l : int;
  mutable r_hi : int; mutable r_lo : int;
}

let mask32 = 0xFFFFFFFF

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let hi z = Int64.to_int (Int64.shift_right_logical z 32) in
  let lo z = Int64.to_int (Int64.logand z 0xFFFFFFFFL) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0h = hi s0; s0l = lo s0;
    s1h = hi s1; s1l = lo s1;
    s2h = hi s2; s2l = lo s2;
    s3h = hi s3; s3l = lo s3;
    r_hi = 0; r_lo = 0 }

(* xoshiro256** next step on 32-bit halves. The two multiplications of the
   ** scrambler are by 5 and 9, so a 32x32 partial-product multiply is
   never needed: multiply the halves directly (fits in 36 bits) and carry
   the overflow of the low half into the high one. *)
let step t =
  (* result = rotl(s1 * 5, 7) * 9 *)
  let m5l = t.s1l * 5 in
  let m5h = ((t.s1h * 5) + (m5l lsr 32)) land mask32 in
  let m5l = m5l land mask32 in
  (* rotl 7 *)
  let rh = ((m5h lsl 7) lor (m5l lsr 25)) land mask32 in
  let rl = ((m5l lsl 7) lor (m5h lsr 25)) land mask32 in
  let m9l = rl * 9 in
  t.r_hi <- ((rh * 9) + (m9l lsr 32)) land mask32;
  t.r_lo <- m9l land mask32;
  (* state transition *)
  let tmph = ((t.s1h lsl 17) lor (t.s1l lsr 15)) land mask32 in
  let tmpl = (t.s1l lsl 17) land mask32 in
  t.s2h <- t.s2h lxor t.s0h;
  t.s2l <- t.s2l lxor t.s0l;
  t.s3h <- t.s3h lxor t.s1h;
  t.s3l <- t.s3l lxor t.s1l;
  t.s1h <- t.s1h lxor t.s2h;
  t.s1l <- t.s1l lxor t.s2l;
  t.s0h <- t.s0h lxor t.s3h;
  t.s0l <- t.s0l lxor t.s3l;
  t.s2h <- t.s2h lxor tmph;
  t.s2l <- t.s2l lxor tmpl;
  (* s3 = rotl(s3, 45) = halves swapped (rotl 32), then rotl 13 *)
  let h = t.s3h and l = t.s3l in
  t.s3h <- ((l lsl 13) lor (h lsr 19)) land mask32;
  t.s3l <- ((h lsl 13) lor (l lsr 19)) land mask32

(** Raw 64-bit step of the generator (boxed; prefer [bits63] in loops). *)
let next_int64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.r_hi) 32) (Int64.of_int t.r_lo)

(** The next draw truncated to a native int, allocation-free. Same stream
    position and value as [Int64.to_int (next_int64 t)]: the low 63 bits,
    bit 62 landing in the sign. One word of 63 simulation slots. *)
let bits63 t =
  step t;
  ((t.r_hi land 0x7FFFFFFF) lsl 32) lor t.r_lo

(** [int t bound] draws uniformly from [0, bound). *)
let int t bound =
  assert (bound > 0);
  step t;
  (* = Int64.to_int (result >>> 2), which is nonnegative (62 bits) *)
  let r = (t.r_hi lsl 30) lor (t.r_lo lsr 2) in
  r mod bound

let bool t =
  step t;
  t.r_lo land 1 = 1

(** Uniform float in [0, 1). *)
let float t =
  step t;
  (* top 53 bits of the draw, as in the reference double conversion *)
  let mantissa = Float.of_int ((t.r_hi lsl 21) lor (t.r_lo lsr 11)) in
  mantissa *. (1.0 /. 9007199254740992.0)

(** Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max (float t) 1e-300 in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

(** Fisher-Yates shuffle in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [sample t k n] draws [k] distinct indices from [0, n). *)
let sample t k n =
  assert (k <= n);
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.sub arr 0 k

(** [choose t lst] picks one element of a non-empty list. *)
let choose t lst =
  match lst with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ :: _ -> List.nth lst (int t (List.length lst))

(** [split t n] derives [n] child streams from [t], advancing [t] by [n]
    draws. Each child is seeded from one raw draw of the parent and then
    re-expanded through splitmix64 by [create], so the children's draw
    sequences are decorrelated from the parent's and from each other (a
    differential test pins disjointness over the first draws and
    reproducibility across runs). Deterministic fan-out: task [i] of a
    parallel batch uses stream [i] regardless of which domain runs it. *)
let split t n =
  if n < 0 then invalid_arg "Rng.split: negative count";
  Array.init n (fun _ -> create (Int64.to_int (next_int64 t)))
