(** Fixed-size domain worker pool for the embarrassingly-parallel engines.

    Every hot fan-out in the toolkit — ATPG fault processing, TVLA trace
    batches, multi-start placement, SAT-attack portfolios — is a set of
    independent tasks whose *reduction* must stay deterministic. The pool
    therefore separates scheduling (which domain runs a task: arbitrary,
    work-stealing) from semantics (which result is kept: ordered by task
    index, never by completion time):

    - [parallel_map] preserves input order in its result array, so any
      fold over it is independent of the number of domains;
    - randomness is never shared: callers pre-split their generator with
      {!Rng.split} and task [i] draws from stream [i] wherever it runs;
    - cancellation is cooperative: a shared stop flag is set when the
      caller's {!Budget} exhausts (polled between tasks on the caller's
      slot), when a task raises, or when a {!race} finds a winner. Tasks
      already running finish (or observe the flag through
      [ctx.cancelled] / a [ctx.task_budget]); tasks not yet started are
      skipped and report [None]. Domains are always joined.

    Scheduling: the task range is divided into one contiguous stripe per
    slot, each with an atomic cursor; a slot that exhausts its stripe
    steals from the other stripes in a fixed scan order. This is chunked
    fan-out with stealing — cheap, and the placement of tasks onto
    domains affects throughput only, never results.

    The pool never charges the caller's budget: engines account their own
    work (solver conflicts, faults, moves) on the calling domain, the
    pool only *observes* exhaustion. Worker domains start with no ambient
    {!Telemetry} context (it is domain-local); instead every task runs
    under a private capture context ({!Telemetry.capture_task}) wrapped
    in a [pool.task] span with [task]/[domain] attributes, and the frozen
    buffers are merged into the caller's trace after the join
    ({!Telemetry.absorb}), in task-index order, reparented under the
    dispatching [pool.batch] span — engine instrumentation inside pooled
    tasks is fully visible, and deterministic workloads merge to
    bit-identical traces at any pool size (modulo the scheduling noise
    {!Telemetry.Trace.canonicalize} projects away). The pool itself still
    reports per-batch scheduling metrics — [pool.tasks] / [pool.steals]
    counters, a [pool.utilization] gauge and one [pool.domain] note per
    slot — from the caller's domain, all stamped with a single clock
    reading so the caller's clock-read count per batch is fixed.

    Not reentrant: calling pool operations from inside a task is
    unsupported. One caller domain at a time. *)

module T = Telemetry

type slot_stats = {
  mutable tasks : int;
  mutable steals : int;
  mutable busy : float;  (* wall-clock seconds spent executing tasks *)
}

type job = {
  gen : int;
  work : int -> unit;  (* slot index -> runs tasks until none remain *)
  mutable pending : int;  (* workers that have not finished this job *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t array;
}

type task_ctx = {
  task_index : int;
  slot : int;
  cancelled : unit -> bool;
  task_budget : ?steps:int -> ?seconds:float -> unit -> Budget.t;
}

let now () = Unix.gettimeofday ()

let recommended () = max 1 (Domain.recommended_domain_count ())

(** Pool size implied by the environment: [SECURE_EDA_JOBS] when set to a
    positive integer, else 1 (sequential). The CLI's [-j] and the bench
    harness use this as their default so CI can widen every run at once. *)
let default_jobs () =
  match Sys.getenv_opt "SECURE_EDA_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> min n 64
     | Some _ | None -> 1)
  | None -> 1

(* Workers pick up each new job exactly once (generations are strictly
   increasing) and park on [work_ready] in between. *)
let rec worker t slot last_gen =
  Mutex.lock t.mutex;
  let rec await () =
    match t.job with
    | Some j when j.gen > last_gen -> Some j
    | _ ->
      if t.shutting_down then None
      else begin
        Condition.wait t.work_ready t.mutex;
        await ()
      end
  in
  let j = await () in
  Mutex.unlock t.mutex;
  match j with
  | None -> ()
  | Some j ->
    (try j.work slot with _ -> ());
    Mutex.lock t.mutex;
    j.pending <- j.pending - 1;
    if j.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    worker t slot j.gen

let create ?num_domains () =
  let requested = match num_domains with Some n -> n | None -> recommended () in
  let size = max 1 (min requested 64) in
  let t =
    { size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      shutting_down = false;
      workers = [||] }
  in
  if size > 1 then
    t.workers <- Array.init (size - 1) (fun k -> Domain.spawn (fun () -> worker t (k + 1) 0));
  t

let size t = t.size

let shutdown t =
  if not t.shutting_down then begin
    Mutex.lock t.mutex;
    t.shutting_down <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?num_domains f =
  let t = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [work slot] on every slot: the caller is slot 0, spawned domains
   are slots 1..size-1. Returns after all slots finished (the join that
   makes worker-side writes safely visible to the caller).

   The join is wedge-proof: whatever the caller's own [work 0] does —
   raise, or be interrupted by an exception from a budget poll — the
   wait-for-workers runs in a [Fun.protect] finalizer, so a batch can
   never return (or unwind) with worker domains still executing its
   closures, and the pool is always reusable afterwards. Worker slots
   have the same property: their decrement of [pending] is unconditional
   after the (exception-swallowing) [j.work] call. *)
let run_batch t work =
  if t.size = 1 then work 0
  else begin
    Mutex.lock t.mutex;
    t.generation <- t.generation + 1;
    let j = { gen = t.generation; work; pending = t.size - 1 } in
    t.job <- Some j;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.mutex;
        while j.pending > 0 do
          Condition.wait t.work_done t.mutex
        done;
        t.job <- None;
        Mutex.unlock t.mutex)
      (fun () -> try work 0 with _ -> ())
  end

(* The scheduling core shared by map and race. [exec ctx i] must record
   its own result; exceptions it lets escape are captured per task index
   and the first (lowest-index) one is re-raised after the join.

   [chunk] is the scheduling grain: a slot claims up to [chunk]
   consecutive task indices per atomic cursor bump and amortizes the
   per-claim bookkeeping (two clock reads, counter updates) over the
   block. Chunking moves tasks between domains, never changes which
   results land where — semantics are grain-independent. The stop flag
   is still polled before every task inside a block, so cancellation
   latency stays one task, not one chunk. *)
let drive ?budget ?(label = "batch") ?(chunk = 1) ~stop ~exec t n =
  let chunk = max 1 chunk in
  let exns = Array.make n None in
  (* Worker-side telemetry: each task runs under a private capture
     context derived from the caller's ([spec] is an immutable snapshot,
     None when no sink is installed); its frozen buffer lands in
     [captures] — one writer per index, published by the batch join —
     and is absorbed into the caller's trace afterwards in task order. *)
  let spec = T.capture_spec () in
  let captures = Array.make n None in
  let exec ctx i =
    T.capture_task spec ~task:i ~domain:ctx.slot
      ~into:(fun b -> captures.(i) <- Some b)
      (fun () -> exec ctx i)
  in
  let lo s = s * n / t.size in
  let hi s = (s + 1) * n / t.size in
  let next = Array.init t.size (fun s -> Atomic.make (lo s)) in
  let stats = Array.init t.size (fun _ -> { tasks = 0; steals = 0; busy = 0.0 }) in
  let completed = Atomic.make 0 in
  (match budget with Some b when Budget.exhausted b -> Atomic.set stop true | _ -> ());
  let cancelled () = Atomic.get stop in
  let task_budget ?steps ?seconds () =
    Budget.create ~clock:Unix.gettimeofday ?steps ?seconds ~poll:cancelled ()
  in
  (* Run tasks [i, j): one timing window for the whole block. *)
  let run_block slot i j =
    let st = stats.(slot) in
    let t0 = now () in
    let k = ref i in
    while !k < j && not (Atomic.get stop) do
      (try exec { task_index = !k; slot; cancelled; task_budget } !k
       with e ->
         exns.(!k) <- Some (e, Printexc.get_raw_backtrace ());
         Atomic.set stop true);
      st.tasks <- st.tasks + 1;
      Atomic.incr completed;
      incr k
    done;
    st.busy <- st.busy +. (now () -. t0)
  in
  let work slot =
    let rec loop () =
      (* only the caller's slot touches the (non-thread-safe) budget *)
      (match budget with
       | Some b when slot = 0 && Budget.exhausted b -> Atomic.set stop true
       | _ -> ());
      if not (Atomic.get stop) then
        match grab () with
        | Some (i, j) ->
          run_block slot i j;
          loop ()
        | None -> ()
    and grab () =
      let i = Atomic.fetch_and_add next.(slot) chunk in
      if i < hi slot then Some (i, min (i + chunk) (hi slot)) else steal 1
    and steal k =
      if k >= t.size then None
      else begin
        let v = (slot + k) mod t.size in
        (* steal single tasks: finer grain rebalances the tail *)
        let i = Atomic.fetch_and_add next.(v) 1 in
        if i < hi v then begin
          stats.(slot).steals <- stats.(slot).steals + 1;
          Some (i, i + 1)
        end
        else steal (k + 1)
      end
    in
    loop ()
  in
  let attrs = [ ("label", T.Str label); ("tasks", T.Int n); ("domains", T.Int t.size) ] in
  T.with_span "pool.batch" ~attrs (fun () ->
      let t_start = now () in
      run_batch t work;
      let elapsed = now () -. t_start in
      Array.iter (function Some b -> T.absorb b | None -> ()) captures;
      let executed = Atomic.get completed in
      let total_steals = Array.fold_left (fun acc s -> acc + s.steals) 0 stats in
      let total_busy = Array.fold_left (fun acc s -> acc +. s.busy) 0.0 stats in
      (* One shared timestamp for all scheduling events: the caller's
         clock is read exactly once here regardless of pool size or
         steal count, which keeps ticking fake clocks deterministic. *)
      let t_sched = T.now () in
      T.count ~time:t_sched "pool.tasks" executed;
      T.count ~time:t_sched "pool.steals" total_steals;
      if elapsed > 0.0 then
        T.gauge ~time:t_sched "pool.utilization"
          (Float.min 1.0 (total_busy /. (elapsed *. Float.of_int t.size)));
      Array.iteri
        (fun slot st ->
          T.note ~time:t_sched "pool.domain"
            ~attrs:
              [ ("slot", T.Int slot);
                ("tasks", T.Int st.tasks);
                ("steals", T.Int st.steals);
                ("busy_s", T.Float st.busy) ])
        stats;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        exns)

let parallel_map ?budget ?label ?chunk t ~f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  if n > 0 then begin
    let stop = Atomic.make false in
    drive ?budget ?label ?chunk ~stop t n
      ~exec:(fun ctx i -> results.(i) <- Some (f ctx inputs.(i)))
  end;
  results

let parallel_try_map ?budget ?label ?chunk t ~f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  if n > 0 then begin
    let stop = Atomic.make false in
    (* Isolation: the task body catches everything itself, so no
       exception ever reaches [drive]'s per-task capture — the stop flag
       stays clear and the other tasks keep running. [None] still marks
       tasks skipped by budget exhaustion or an external cancel. *)
    drive ?budget ?label ?chunk ~stop t n ~exec:(fun ctx i ->
        let r = try Ok (f ctx inputs.(i)) with e -> Error e in
        results.(i) <- Some r)
  end;
  results

let parallel_reduce ?budget ?label ?chunk t ~f ~combine ~init inputs =
  let results = parallel_map ?budget ?label ?chunk t ~f inputs in
  Array.fold_left
    (fun acc r -> match r with Some v -> combine acc v | None -> acc)
    init results

let race ?budget ?label t ~f inputs =
  let n = Array.length inputs in
  if n = 0 then None
  else begin
    let stop = Atomic.make false in
    let winner = Atomic.make None in
    drive ?budget ?label ~stop t n ~exec:(fun ctx i ->
        match f ctx inputs.(i) with
        | Some v ->
          if Atomic.compare_and_set winner None (Some (i, v)) then Atomic.set stop true
        | None -> ());
    Atomic.get winner
  end
