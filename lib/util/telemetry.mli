(** Zero-dependency tracing and metrics for every engine in the toolkit.

    Security metrics are step functions of invested effort (Sec. IV); to
    see the step you must record where the effort went — SAT conflicts,
    ATPG fault outcomes, annealing moves, TVLA traces — as the flow runs.
    Telemetry makes every run an analyzable artifact:

    - {b spans}: named, attributed, hierarchically nested intervals whose
      lifecycle follows engine calls ([Flow.run] stages, SAT solves,
      DIP iterations);
    - {b counters / gauges / histograms}: registered by name; histograms
      aggregate online through {!Stats.moments};
    - {b sinks}: {!null} (the default ambient state — near-zero overhead),
      an in-memory collector for tests, and a JSONL exporter streaming one
      event per line.

    The sink is ambient {e per domain} (installed with {!with_sink},
    stored in domain-local storage) so engines need no signature changes;
    with no sink installed every instrumentation point is a single
    DLS read. Worker domains spawned by {!Pool} start with no context;
    the pool installs a private per-task {e capture} context in each
    worker ({!capture_task}), buffers what the task records, and merges
    the buffers back into the installing domain's trace after the join
    ({!absorb}) — span ids remapped onto the caller's id space, worker
    spans reparented under the dispatching [pool.batch] span, buffers
    applied in task-index order. Deterministic workloads therefore
    produce {e bit-identical merged traces at any pool size} once
    scheduling noise is projected away ({!Trace.canonicalize}).

    Clock semantics: the default clock is a monotonized
    [Unix.gettimeofday] — wall-clock seconds, never decreasing — not
    [Sys.time] (process CPU time, which reads wrong on multicore runs).
    Span durations are wall seconds. [?clock] still accepts fake clocks
    for deterministic tests, and [?task_clock] extends the same hook to
    pooled captures. *)

(** Attribute values carried by spans and point events. *)
type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type attrs = (string * value) list

type kind =
  | Span_start
  | Span_end  (** [value] holds the span duration in clock units *)
  | Point  (** a point-in-time note attached to the enclosing span *)
  | Count  (** [value] holds the increment *)
  | Gauge  (** [value] holds the sampled level *)
  | Hist  (** summary of an {!observe} series, emitted at sink teardown *)

type event = {
  kind : kind;
  span : int;  (** owning span id; for span events, the span's own id. 0 = none *)
  parent : int;  (** enclosing span id at emission time; 0 = root *)
  name : string;
  time : float;  (** clock reading at emission *)
  value : float;
  attrs : attrs;
}

(** {1 Sinks} *)

type sink

(** The no-op sink: installing it is identical to having no sink at all. *)
val null : sink

(** In-memory collector; the second component returns everything emitted
    so far, in emission order. *)
val memory_sink : unit -> sink * (unit -> event list)

(** Streams one JSON object per line to [oc] (flushed at teardown). *)
val jsonl_sink : out_channel -> sink

(** A fresh monotonized wall clock: [Unix.gettimeofday] forced
    non-decreasing. One closure per call; the internal ref is meant to
    stay confined to one domain. *)
val monotonic_clock : unit -> unit -> float

(** Install [sink] for the duration of [f]. Nests: the previous sink is
    restored afterwards (also on exceptions). [clock] defaults to a fresh
    {!monotonic_clock} (wall seconds — note this changed from [Sys.time],
    which was CPU seconds); pass a fake clock for deterministic tests.
    [task_clock] is the per-task clock factory used by pooled captures
    ({!capture_task}); it defaults to [fun _ -> monotonic_clock ()] so
    no mutable clock state is shared across domains. [gc] (default
    [false]) attaches per-span allocation deltas ([gc.alloc_words],
    [gc.major_words]) to every {!Span_end} event — useful, but
    nondeterministic, so off unless asked for. At teardown, one {!Hist}
    summary event per {!observe}d name is emitted and the sink is
    flushed. *)
val with_sink :
  ?clock:(unit -> float) ->
  ?task_clock:(int -> unit -> float) ->
  ?gc:bool ->
  sink ->
  (unit -> 'a) ->
  'a

(** True when a non-null sink is installed — use to guard instrumentation
    whose {e argument computation} is not free. *)
val active : unit -> bool

(** {1 Recording} *)

(** Run [f] inside a fresh span. Span ids are per-sink-installation and
    strictly increasing; nesting follows the dynamic call structure.
    An exception escaping [f] still ends the span, with an [error]
    attribute, and is re-raised. *)
val with_span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a

(** The current context's clock reading; 0 with no sink installed. Use
    [?time] below to stamp several bookkeeping events from one reading. *)
val now : unit -> float

(** Point event in the current span. [?time] overrides the clock reading
    (used by {!Pool} to keep the caller's clock-read count independent of
    how many bookkeeping events a batch emits). *)
val note : ?time:float -> ?attrs:attrs -> string -> unit

(** Add [n] to the named counter (registry total) and emit a {!Count}
    event when [n <> 0]. *)
val count : ?time:float -> string -> int -> unit

(** Sample the named gauge. *)
val gauge : ?time:float -> string -> float -> unit

(** Feed one observation into the named histogram ({!Stats.moments}
    under the hood); no per-observation event is emitted — a {!Hist}
    summary (n, mean, std, min, max) appears at sink teardown. *)
val observe : string -> float -> unit

(** {1 Allocation accounting} — the GC cost model shared by per-span
    deltas and the bench harness. *)

type alloc = {
  alloc_words : float;  (** minor + major - promoted: total words allocated *)
  major_words : float;
}

(** Current allocation totals for this domain ([Gc.counters], the live
    allocation counters; does not force a collection). *)
val alloc_snapshot : unit -> alloc

(** Delta between now and an earlier {!alloc_snapshot}. *)
val alloc_since : alloc -> alloc

(** {1 Registry access} (valid inside [with_sink]; empty/0 outside) *)

val counter_total : string -> int
val counter_totals : unit -> (string * int) list  (** sorted by name *)

val gauge_last : string -> float option

(** [(n, mean, std)] of an {!observe} series. *)
val observed : string -> (int * float * float) option

(** [(min, max)] of an {!observe} series; [None] until the first
    observation. *)
val observed_range : string -> (float * float) option

(** {1 Cross-domain capture} — how {!Pool} makes worker telemetry land
    in the installing domain's trace.

    The installing domain takes a {!capture_spec} snapshot of its
    context before dispatch; each worker runs its task under
    {!capture_task}, which installs a private buffering context (events,
    registries, a per-task clock from the spec's factory) and wraps the
    task in a [pool.task] span carrying [task]/[domain] attributes. The
    finished buffer is handed to [into] even when the task raises, so a
    crashing worker still yields a well-formed buffer whose [pool.task]
    span ends with an [error] attribute. After the join the caller
    replays the buffers with {!absorb} {e in task-index order}: span ids
    are remapped onto a fresh block of the caller's id space, buffer
    roots are reparented under the caller's enclosing span, and registry
    totals merge once (counters add, gauges replace so the highest
    absorbed task index wins, moments merge via
    {!Stats.moments_merge}) — the re-emitted [Count] events are stream
    data only and do not double-bump totals. *)

(** A finished task's frozen telemetry: events in emission order plus
    name-sorted registry snapshots. Safe to move across domains. *)
type buffer

(** Immutable slice of the current context a worker needs to build its
    capture context. [None] when no sink is installed — {!capture_task}
    then degrades to running the task bare. *)
type worker_spec

val capture_spec : unit -> worker_spec option

(** Run one pooled task under a private capture context. The buffer is
    delivered to [into] from the worker domain at task end (normal or
    exceptional); the caller must keep it until {!absorb} after the
    join. Exceptions re-raise after delivery. *)
val capture_task :
  worker_spec option -> task:int -> domain:int -> into:(buffer -> unit) -> (unit -> 'a) -> 'a

(** Merge one buffer into the current context (see above for ordering
    and remapping guarantees). Call from the installing domain only,
    inside the span that should adopt the worker spans. *)
val absorb : buffer -> unit

(** {1 JSON} — the minimal encoder/parser behind the JSONL sink, exposed
    for other machine-readable outputs (e.g. bench reports). Strings are
    emitted as pure ASCII: control characters and every code point above
    U+007F become spec-compliant [\uXXXX] escapes (surrogate pairs
    beyond the BMP), and the parser decodes the full escape range back
    to UTF-8 — traces survive strict JSON parsers byte-for-byte. *)

module Json : sig
  type t =
    | Null
    | JBool of bool
    | JInt of int
    | JFloat of float  (** non-finite values serialize as [null] *)
    | JStr of string
    | JList of t list
    | JObj of (string * t) list

  val to_string : t -> string
  val parse : string -> (t, string) result
end

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

(** One JSONL line (no trailing newline). *)
val event_to_line : event -> string

val event_of_line : string -> (event, string) result

(** {1 Traces} — reconstruction and reporting *)

module Trace : sig
  type span = {
    id : int;
    parent : int;
    name : string;
    start : float;
    mutable duration : float option;  (** [None]: never ended (crashed run) *)
    attrs : attrs;
    mutable end_attrs : attrs;
    mutable children : span list;  (** in start order *)
    mutable counters : (string * float) list;  (** this span's own increments *)
    mutable gauges : (string * float) list;  (** last value per name *)
    mutable notes : (string * attrs) list;
  }

  type t = {
    roots : span list;
    span_count : int;
    event_count : int;
    counter_totals : (string * float) list;  (** whole-trace, sorted *)
    gauge_last : (string * float) list;
    hists : (string * attrs) list;
  }

  (** Rebuild the span tree. [Error] on structural violations (an end or
      a counter referencing a span that never started). *)
  val of_events : event list -> (t, string) result

  (** Parse JSONL text (one event per line; blank lines ignored). *)
  val of_string : string -> (t, string) result

  val of_file : string -> (t, string) result

  (** All spans with the given name, in start order. *)
  val find_spans : t -> string -> span list

  (** Human-readable profile: the span tree with per-span wall time,
      counters and notes, then whole-trace counter/gauge/histogram
      totals. *)
  val pp_profile : Format.formatter -> t -> unit

  (** {2 Analysis} *)

  (** A span's duration; 0 when it never ended. *)
  val duration : span -> float

  (** Duration minus children's durations, clamped at 0 (merged worker
      spans overlap in wall time, so children can sum past the parent). *)
  val self_time : span -> float

  (** Longest root, then repeatedly the longest child; ties break to the
      earliest span in start order. Empty for an empty trace. *)
  val critical_path : t -> span list

  val pp_critical_path : Format.formatter -> t -> unit

  (** Folded stacks: one entry per distinct root-to-span name path
      ([a;b;c], sorted), value = summed self time in seconds. *)
  val fold_stacks : t -> (string * float) list

  (** {!fold_stacks} in the format flamegraph tooling ingests:
      ["path;to;span <self µs>"] per line. *)
  val pp_flame : Format.formatter -> t -> unit

  (** Per-name summed span durations over the whole trace, name-sorted —
      the aggregation {!diff_traces} compares; also the phase-split
      primitive (e.g. encode vs solve seconds) the bench reports. *)
  val span_totals : t -> (string * float) list

  (** Per-domain busy accounting from merged [pool.task] spans:
      [(domain, tasks, busy seconds)], sorted by domain id. *)
  val domain_timeline : t -> (int * int * float) list

  val pp_domains : Format.formatter -> t -> unit

  (** Project away scheduling noise: drops [pool.steals] /
      [pool.utilization] / [pool.domain] events and strips
      [domain]/[domains]/[slot]/[busy_s]/[gc.*] attributes, so a
      deterministic workload's merged trace is bit-identical across pool
      sizes. *)
  val canonicalize : event list -> event list

  (** {2 Trace-vs-trace diff} *)

  type verdict =
    | Regression  (** run worse than base past threshold (slower/bigger) *)
    | Improvement
    | Unchanged
    | Added  (** metric only in the run trace *)
    | Removed  (** metric only in the base trace *)
    | Changed  (** direction-free metrics (gauges) outside threshold *)

  type diff_entry = {
    metric : string;  (** prefixed ["span:"], ["counter:"] or ["gauge:"] *)
    base_value : float option;
    run_value : float option;
    diff_verdict : verdict;
  }

  type diff = {
    entries : diff_entry list;  (** spans, then counters, then gauges; name-sorted *)
    regressions : int;  (** number of [Regression] verdicts *)
  }

  (** Compare [run] against [base]: per-name span duration totals
      (summed over same-named spans), counter totals, and final gauge
      values. Two values compare [Unchanged] under the symmetric
      relative test [r <= b*(1+threshold) && b <= r*(1+threshold)]
      (default threshold 0.25); metrics are assumed nonnegative.
      [min_duration] (seconds, default 0) drops span entries whose
      larger total is below it, so microsecond-level jitter cannot flag
      regressions.

      Direction is per metric: span totals and counters generally
      measure work (bigger is the regression), but optimization-health
      counters ([atpg.session_reused], [atpg.faults_dropped],
      [atpg.covered_by_simulation]) invert — a {e drop} means the fast
      path stopped engaging and reads as [Regression]; neutral workload
      descriptors ([sat.groups_retired]) and gauges read as [Changed]. *)
  val diff_traces : ?threshold:float -> ?min_duration:float -> base:t -> t -> diff

  val pp_diff : Format.formatter -> diff -> unit
end
