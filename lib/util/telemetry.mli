(** Zero-dependency tracing and metrics for every engine in the toolkit.

    Security metrics are step functions of invested effort (Sec. IV); to
    see the step you must record where the effort went — SAT conflicts,
    ATPG fault outcomes, annealing moves, TVLA traces — as the flow runs.
    Telemetry makes every run an analyzable artifact:

    - {b spans}: named, attributed, hierarchically nested intervals whose
      lifecycle follows engine calls ([Flow.run] stages, SAT solves,
      DIP iterations);
    - {b counters / gauges / histograms}: registered by name; histograms
      aggregate online through {!Stats.moments};
    - {b sinks}: {!null} (the default ambient state — near-zero overhead),
      an in-memory collector for tests, and a JSONL exporter streaming one
      event per line.

    The sink is ambient {e per domain} (installed with {!with_sink},
    stored in domain-local storage) so engines need no signature changes;
    with no sink installed every instrumentation point is a single
    DLS read. Worker domains spawned by {!Pool} start with no context, so
    engine code running on a pool is telemetry-silent there and the pool
    reports batch-level metrics from the installing domain instead. *)

(** Attribute values carried by spans and point events. *)
type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type attrs = (string * value) list

type kind =
  | Span_start
  | Span_end  (** [value] holds the span duration in clock units *)
  | Point  (** a point-in-time note attached to the enclosing span *)
  | Count  (** [value] holds the increment *)
  | Gauge  (** [value] holds the sampled level *)
  | Hist  (** summary of an {!observe} series, emitted at sink teardown *)

type event = {
  kind : kind;
  span : int;  (** owning span id; for span events, the span's own id. 0 = none *)
  parent : int;  (** enclosing span id at emission time; 0 = root *)
  name : string;
  time : float;  (** clock reading at emission *)
  value : float;
  attrs : attrs;
}

(** {1 Sinks} *)

type sink

(** The no-op sink: installing it is identical to having no sink at all. *)
val null : sink

(** In-memory collector; the second component returns everything emitted
    so far, in emission order. *)
val memory_sink : unit -> sink * (unit -> event list)

(** Streams one JSON object per line to [oc] (flushed at teardown). *)
val jsonl_sink : out_channel -> sink

(** Install [sink] for the duration of [f]. Nests: the previous sink is
    restored afterwards (also on exceptions). [clock] defaults to
    [Sys.time]; pass a fake clock for deterministic tests. At teardown,
    one {!Hist} summary event per {!observe}d name is emitted and the
    sink is flushed. *)
val with_sink : ?clock:(unit -> float) -> sink -> (unit -> 'a) -> 'a

(** True when a non-null sink is installed — use to guard instrumentation
    whose {e argument computation} is not free. *)
val active : unit -> bool

(** {1 Recording} *)

(** Run [f] inside a fresh span. Span ids are per-sink-installation and
    strictly increasing; nesting follows the dynamic call structure.
    An exception escaping [f] still ends the span, with an [error]
    attribute, and is re-raised. *)
val with_span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a

(** Point event in the current span. *)
val note : ?attrs:attrs -> string -> unit

(** Add [n] to the named counter (registry total) and emit a {!Count}
    event when [n <> 0]. *)
val count : string -> int -> unit

(** Sample the named gauge. *)
val gauge : string -> float -> unit

(** Feed one observation into the named histogram ({!Stats.moments}
    under the hood); no per-observation event is emitted — a {!Hist}
    summary (n, mean, std) appears at sink teardown. *)
val observe : string -> float -> unit

(** {1 Registry access} (valid inside [with_sink]; empty/0 outside) *)

val counter_total : string -> int
val counter_totals : unit -> (string * int) list  (** sorted by name *)

val gauge_last : string -> float option

(** [(n, mean, std)] of an {!observe} series. *)
val observed : string -> (int * float * float) option

(** {1 JSON} — the minimal encoder/parser behind the JSONL sink, exposed
    for other machine-readable outputs (e.g. bench reports). Strings are
    emitted as pure ASCII: control characters and every code point above
    U+007F become spec-compliant [\uXXXX] escapes (surrogate pairs
    beyond the BMP), and the parser decodes the full escape range back
    to UTF-8 — traces survive strict JSON parsers byte-for-byte. *)

module Json : sig
  type t =
    | Null
    | JBool of bool
    | JInt of int
    | JFloat of float  (** non-finite values serialize as [null] *)
    | JStr of string
    | JList of t list
    | JObj of (string * t) list

  val to_string : t -> string
  val parse : string -> (t, string) result
end

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

(** One JSONL line (no trailing newline). *)
val event_to_line : event -> string

val event_of_line : string -> (event, string) result

(** {1 Traces} — reconstruction and reporting *)

module Trace : sig
  type span = {
    id : int;
    parent : int;
    name : string;
    start : float;
    mutable duration : float option;  (** [None]: never ended (crashed run) *)
    attrs : attrs;
    mutable end_attrs : attrs;
    mutable children : span list;  (** in start order *)
    mutable counters : (string * float) list;  (** this span's own increments *)
    mutable gauges : (string * float) list;  (** last value per name *)
    mutable notes : (string * attrs) list;
  }

  type t = {
    roots : span list;
    span_count : int;
    event_count : int;
    counter_totals : (string * float) list;  (** whole-trace, sorted *)
    gauge_last : (string * float) list;
    hists : (string * attrs) list;
  }

  (** Rebuild the span tree. [Error] on structural violations (an end or
      a counter referencing a span that never started). *)
  val of_events : event list -> (t, string) result

  (** Parse JSONL text (one event per line; blank lines ignored). *)
  val of_string : string -> (t, string) result

  val of_file : string -> (t, string) result

  (** All spans with the given name, in start order. *)
  val find_spans : t -> string -> span list

  (** Human-readable profile: the span tree with per-span wall time,
      counters and notes, then whole-trace counter/gauge/histogram
      totals. *)
  val pp_profile : Format.formatter -> t -> unit
end
