(** Structured errors for user-reachable failure paths.

    The toolkit's engines historically signalled malformed input with raw
    [failwith]/[assert] — an uncaught backtrace is exactly the
    security-unaware brittleness the paper warns about in flow composition.
    User-reachable entry points (parsing, linting, engine [*_checked]
    variants, [Flow.run]) instead return [('a, Eda_error.t) result] so
    callers can report, degrade or retry deliberately. *)

type t =
  | Parse_error of { line : int option; msg : string }
      (** Malformed netlist text; [line] is 1-based when known. *)
  | Lint_error of { check : string; net : string option; msg : string }
      (** Structurally invalid circuit caught before an engine ran. *)
  | Budget_exhausted of { engine : string; reason : Budget.exhaustion; progress : string }
      (** An engine hit its budget with nothing useful to return;
          [progress] records how far it got. *)
  | Invalid_input of { what : string; msg : string }
      (** A well-formed request the toolkit cannot serve
          (unknown design name, wrong interface, ...). *)
  | Engine_failure of { engine : string; msg : string }
      (** An engine raised internally; the exception text is preserved. *)

let to_string = function
  | Parse_error { line = Some l; msg } -> Printf.sprintf "parse error (line %d): %s" l msg
  | Parse_error { line = None; msg } -> Printf.sprintf "parse error: %s" msg
  | Lint_error { check; net = Some n; msg } -> Printf.sprintf "lint [%s] net %s: %s" check n msg
  | Lint_error { check; net = None; msg } -> Printf.sprintf "lint [%s]: %s" check msg
  | Budget_exhausted { engine; reason; progress } ->
    Printf.sprintf "%s: %s (%s)" engine (Budget.describe_exhaustion reason) progress
  | Invalid_input { what; msg } -> Printf.sprintf "invalid %s: %s" what msg
  | Engine_failure { engine; msg } -> Printf.sprintf "%s failed: %s" engine msg

exception Error of t

(** Run [f], converting any escaped exception into [Engine_failure] (or the
    carried [t] for [Error]). The boundary between exception-style internals
    and result-style public APIs. *)
let guard ~engine f =
  match f () with
  | v -> Ok v
  | exception Error e -> Result.Error e
  | exception Failure msg -> Result.Error (Engine_failure { engine; msg })
  | exception Invalid_argument msg -> Result.Error (Engine_failure { engine; msg })
  | exception Assert_failure (file, line, _) ->
    Result.Error
      (Engine_failure { engine; msg = Printf.sprintf "internal assertion %s:%d" file line })
  | exception Not_found -> Result.Error (Engine_failure { engine; msg = "not found" })

let ( let* ) = Result.bind
