(** Zero-dependency QuickCheck-style property testing.

    A property is checked against [count] generated cases; every case
    draws from its own {!Rng.split} stream of a single seed, so a run is
    reproducible from [(seed, count)] alone and a reported failure can be
    replayed exactly (set [PROPTEST_SEED], or pass [~seed]). On failure
    the harness shrinks the counterexample with a bounded greedy descent:
    at each step the first shrink candidate that still fails becomes the
    new counterexample, until no candidate fails or the step bound is
    hit. Shrinking is pure (no fresh randomness), so the minimal
    counterexample is reproducible too.

    The harness deliberately mirrors the toolkit's determinism contract:
    generators are functions of an explicit {!Rng.t}, never of ambient
    state, which is what lets the differential suites assert bit-identity
    across domain counts. *)

(** A generator with an optional shrinker and printer. *)
type 'a arb = {
  gen : Rng.t -> 'a;
  shrink : 'a -> 'a Seq.t;  (** smaller candidates first; may be empty *)
  show : 'a -> string;
}

(** Build an arbitrary; [shrink] defaults to no candidates, [show] to a
    placeholder. *)
val make : ?shrink:('a -> 'a Seq.t) -> ?show:('a -> string) -> (Rng.t -> 'a) -> 'a arb

(** Uniform in [lo, hi] (inclusive); shrinks toward [lo].
    @raise Invalid_argument when [lo > hi]. *)
val int_range : int -> int -> int arb

val bool_arb : bool arb

(** Always [v]; no shrinking. *)
val const : 'a -> 'a arb

(** Uniform choice among a non-empty list; shrinks toward earlier
    elements. *)
val choose_from : ?show:('a -> string) -> 'a list -> 'a arb

(** Pairs/triples shrink componentwise (left component first). *)
val pair : 'a arb -> 'b arb -> ('a * 'b) arb

val triple : 'a arb -> 'b arb -> 'c arb -> ('a * 'b * 'c) arb

(** List whose length is uniform in [min_len, max_len]; shrinks by
    halving the tail away, then by shrinking elements. *)
val list_of : ?min_len:int -> max_len:int -> 'a arb -> 'a list arb

(** [map ?shrink_back f a] transforms generated values. Shrinking maps
    [a]'s candidates through [f] only when [shrink_back] recovers the
    pre-image ([None] disables shrinking through the map). *)
val map : ?shrink_back:('b -> 'a option) -> ?show:('b -> string) -> ('a -> 'b) -> 'a arb -> 'b arb

(** Retry the generator until [pred] holds (at most 1000 draws).
    Shrink candidates not satisfying [pred] are filtered out.
    @raise Invalid_argument when no value is found. *)
val such_that : ('a -> bool) -> 'a arb -> 'a arb

(** A failed property with its replay coordinates. *)
type failure = {
  prop_name : string;
  seed : int;
  case_index : int;  (** which generated case failed (0-based) *)
  shrink_steps : int;  (** greedy shrink steps actually taken *)
  original : string;  (** the case as generated *)
  minimal : string;  (** the case after shrinking *)
  error : string option;  (** exception text when the property raised *)
}

type outcome =
  | Passed of int  (** number of cases checked *)
  | Failed of failure

(** Replay-friendly one-line description of a failure, including the
    [PROPTEST_SEED] needed to reproduce it. *)
val describe_failure : failure -> string

(** Seed from [PROPTEST_SEED] when set to an integer, else [default]. *)
val seed_from_env : default:int -> int

(** [check ~name arb prop] runs [prop] on [count] (default 100) cases.
    [seed] defaults to [seed_from_env ~default:0xEDA]. [max_shrink_steps]
    (default 400) bounds the greedy descent. A property fails by
    returning [false] or raising. *)
val check :
  ?count:int ->
  ?seed:int ->
  ?max_shrink_steps:int ->
  name:string ->
  'a arb ->
  ('a -> bool) ->
  outcome

(** Like {!check} but raises [Failure] with {!describe_failure} text on a
    counterexample — the adapter test runners use. *)
val check_exn :
  ?count:int ->
  ?seed:int ->
  ?max_shrink_steps:int ->
  name:string ->
  'a arb ->
  ('a -> bool) ->
  unit
