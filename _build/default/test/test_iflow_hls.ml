(* Tests for information-flow tracking, QIF model counting, the cache
   covert channel, and the mini HLS. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Taint = Iflow.Taint
module Qif = Iflow.Qif
module Covert = Iflow.Covert
module Hls_df = Hls.Dataflow
module Rng = Eda_util.Rng

let and_mask_circuit () =
  (* y = secret AND gate_ctl: classic conditional leak. *)
  let c = Circuit.create () in
  let secret = Circuit.add_input ~name:"secret" c in
  let ctl = Circuit.add_input ~name:"ctl" c in
  let y = Circuit.add_gate c Gate.And [ secret; ctl ] in
  Circuit.set_output c "y" y;
  c, secret, ctl

let test_structural_taint_reaches () =
  let c, secret, _ = and_mask_circuit () in
  let taint = Taint.structural c ~sources:[ secret ] in
  Alcotest.(check bool) "output tainted" true taint.((Circuit.output_ids c).(0))

let test_structural_taint_does_not_invent () =
  let c, _, ctl = and_mask_circuit () in
  let taint = Taint.structural c ~sources:[ ctl ] in
  Alcotest.(check bool) "secret input untainted" false taint.(0)

let test_glift_precision () =
  let c, secret, _ = and_mask_circuit () in
  let out = (Circuit.output_ids c).(0) in
  (* ctl = 0 dominates the AND: no information about secret flows. *)
  let t0 = Taint.glift c ~sources:[ secret ] [| true; false |] in
  Alcotest.(check bool) "glift: dominated AND untainted" false t0.(out);
  (* ctl = 1: the secret is visible. *)
  let t1 = Taint.glift c ~sources:[ secret ] [| true; true |] in
  Alcotest.(check bool) "glift: open AND tainted" true t1.(out)

let test_glift_vs_structural_conservatism () =
  (* Structural says tainted; GLIFT refines per input. *)
  let c, secret, _ = and_mask_circuit () in
  let rng = Rng.create 1 in
  match Taint.leaks_to_output rng c ~sources:[ secret ] ~output:0 ~samples:50 with
  | `Leaks -> ()
  | `Never | `Structural_only -> Alcotest.fail "AND leaks for ctl=1"

let test_taint_never_without_path () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let y = Circuit.add_gate c Gate.Buf [ b ] in
  Circuit.set_output c "y" y;
  let rng = Rng.create 2 in
  match Taint.leaks_to_output rng c ~sources:[ a ] ~output:0 ~samples:10 with
  | `Never -> ()
  | `Leaks | `Structural_only -> Alcotest.fail "no path from a"

let test_xor_always_flows () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let y = Circuit.add_gate c Gate.Xor [ a; b ] in
  Circuit.set_output c "y" y;
  (* XOR never masks: GLIFT taints for every input combination. *)
  List.iter
    (fun inputs ->
      let t = Taint.glift c ~sources:[ a ] inputs in
      Alcotest.(check bool) "xor flows" true t.((Circuit.output_ids c).(0)))
    [ [| false; false |]; [| false; true |]; [| true; false |]; [| true; true |] ]

let test_qif_basic () =
  (* y = s0 AND s1 leaks H(Y) = h(1/4) bits; y = s0 leaks 1 bit; y = const
     leaks 0. *)
  let mk f =
    let c = Circuit.create () in
    let s0 = Circuit.add_input ~name:"s0" c in
    let s1 = Circuit.add_input ~name:"s1" c in
    let y = f c s0 s1 in
    Circuit.set_output c "y" y;
    c
  in
  let and_c = mk (fun c a b -> Circuit.add_gate c Gate.And [ a; b ]) in
  let buf_c = mk (fun c a _ -> Circuit.add_gate c Gate.Buf [ a ]) in
  let const_c = mk (fun c _ _ -> Circuit.add_const c false) in
  let pub = [| false; false |] in
  let h_and = Qif.shannon_leakage and_c ~secret:[ 0; 1 ] ~public_values:pub in
  let h_buf = Qif.shannon_leakage buf_c ~secret:[ 0; 1 ] ~public_values:pub in
  let h_const = Qif.shannon_leakage const_c ~secret:[ 0; 1 ] ~public_values:pub in
  let expected_and = -.(0.25 *. (log 0.25 /. log 2.0)) -. (0.75 *. (log 0.75 /. log 2.0)) in
  Alcotest.(check (float 1e-9)) "and entropy" expected_and h_and;
  Alcotest.(check (float 1e-9)) "buf leaks 1 bit" 1.0 h_buf;
  Alcotest.(check (float 1e-9)) "const leaks 0" 0.0 h_const

let test_qif_sbox_bijective_leaks_all () =
  let c = Crypto.Sbox_circuit.aes_round_datapath () in
  let secret = List.init 8 (fun i -> 8 + i) in
  let pub = Array.make 16 false in
  Alcotest.(check (float 1e-9)) "bijection leaks 8 bits" 8.0
    (Qif.shannon_leakage c ~secret ~public_values:pub);
  Alcotest.(check (float 1e-9)) "min-entropy too" 8.0
    (Qif.min_entropy_leakage c ~secret ~public_values:pub)

let test_qif_residual_entropy () =
  (* Observing AND output: residual entropy = 0.75 * log2(3) (the three
     preimages of 0), with secret 2 bits. *)
  let c = Circuit.create () in
  let s0 = Circuit.add_input ~name:"s0" c in
  let s1 = Circuit.add_input ~name:"s1" c in
  Circuit.set_output c "y" (Circuit.add_gate c Gate.And [ s0; s1 ]);
  let r = Qif.residual_entropy c ~secret:[ 0; 1 ] ~public_values:[| false; false |] in
  Alcotest.(check (float 1e-9)) "residual" (0.75 *. (log 3.0 /. log 2.0)) r

let test_qif_approx_matches_exact_on_small () =
  let rng = Rng.create 21 in
  let c = Crypto.Sbox_circuit.present_round_datapath () in
  let secret = [ 4; 5; 6; 7 ] in
  let pub = Array.make 8 false in
  let exact = Qif.shannon_leakage c ~secret ~public_values:pub in
  let approx = Qif.approx_shannon_leakage rng c ~secret ~public_values:pub ~samples:4000 in
  Alcotest.(check bool)
    (Printf.sprintf "approx %.2f near exact %.2f" approx exact)
    true
    (Float.abs (approx -. exact) < 0.3)

let test_qif_approx_scales_beyond_exact () =
  (* 16 secret bits on the adder: exact enumeration would need 2^16 sim
     calls per public value; sampling gives the (full) leakage estimate
     quickly. An adder of two 8-bit secrets reveals their sum: H(Y) =
     entropy of the sum distribution ~ 9 bits - binomial concentration. *)
  let rng = Rng.create 22 in
  let c = Netlist.Generators.ripple_adder 8 in
  let secret = List.init 16 (fun i -> i) in
  let pub = Array.make 17 false in
  let approx = Qif.approx_shannon_leakage rng c ~secret ~public_values:pub ~samples:8000 in
  Alcotest.(check bool) (Printf.sprintf "plausible estimate %.2f" approx) true
    (approx > 6.0 && approx < 9.0)

let test_covert_channel () =
  let rng = Rng.create 3 in
  let success = Covert.attack_success rng ~sets:16 ~trials:400 in
  Alcotest.(check (float 1e-9)) "prime+probe recovers" 1.0 success;
  let defended = Covert.attack_success_randomized rng ~sets:16 ~trials:400 in
  Alcotest.(check bool) "randomization defends" true (defended < 0.2)

let test_hls_schedule_respects_deps () =
  let graph =
    { Hls_df.ops =
        [ { Hls_df.id = 0; kind = Hls_df.Add; args = [ -1; -2 ]; sensitivity = Hls_df.Public };
          { Hls_df.id = 1; kind = Hls_df.Mul_dummy; args = [ 0 ]; sensitivity = Hls_df.Public };
          { Hls_df.id = 2; kind = Hls_df.Xor; args = [ 1; -3 ]; sensitivity = Hls_df.Public } ];
      width = 8 }
  in
  let start, makespan = Hls_df.schedule ~units:1 graph in
  let s op = Hashtbl.find start op in
  Alcotest.(check bool) "op1 after op0" true (s 1 >= s 0 + 1);
  Alcotest.(check bool) "op2 after mul latency" true (s 2 >= s 1 + 2);
  Alcotest.(check bool) "makespan covers" true (makespan >= s 2 + 1)

let test_hls_resource_constraint () =
  let ops =
    List.init 6 (fun i ->
        { Hls_df.id = i; kind = Hls_df.Add; args = [ -1; -2 ]; sensitivity = Hls_df.Public })
  in
  let graph = { Hls_df.ops; width = 8 } in
  let start1, span1 = Hls_df.schedule ~units:1 graph in
  let start3, span3 = Hls_df.schedule ~units:3 graph in
  ignore start1;
  ignore start3;
  Alcotest.(check int) "serial span" 6 span1;
  Alcotest.(check int) "parallel span" 2 span3

let secure_mix_graph () =
  { Hls_df.ops =
      [ { Hls_df.id = 0; kind = Hls_df.Add; args = [ -1; -2 ]; sensitivity = Hls_df.Secret };
        { Hls_df.id = 1; kind = Hls_df.Add; args = [ -3; -4 ]; sensitivity = Hls_df.Public };
        { Hls_df.id = 2; kind = Hls_df.Xor; args = [ 0; -3 ]; sensitivity = Hls_df.Secret };
        { Hls_df.id = 3; kind = Hls_df.Xor; args = [ 1; -4 ]; sensitivity = Hls_df.Public } ];
    width = 8 }

let test_hls_secure_binding_no_sharing () =
  let graph = secure_mix_graph () in
  let sched = Hls_df.schedule ~units:2 graph in
  let classical = Hls_df.bind ~security_aware:false ~units:2 graph sched in
  let secure = Hls_df.bind ~security_aware:true ~units:2 graph sched in
  Alcotest.(check bool) "secure binding never shares" false
    (Hls_df.has_cross_class_sharing graph secure);
  (* The classical binder may or may not share here; the secure one must
     not, and both must bind every op. *)
  Alcotest.(check int) "all ops bound (classical)" 4 (List.length classical);
  Alcotest.(check int) "all ops bound (secure)" 4 (List.length secure)

let test_hls_flush_schedule () =
  let graph = secure_mix_graph () in
  let start, makespan = Hls_df.schedule ~units:2 graph in
  let flushes = Hls_df.flush_schedule graph (start, makespan) in
  (* Two secret-producing ops -> two flush entries within the schedule. *)
  Alcotest.(check int) "flush count" 2 (List.length flushes);
  List.iter
    (fun (_, cycle) -> Alcotest.(check bool) "flush inside schedule" true (cycle <= makespan))
    flushes

let prop_glift_subset_of_structural =
  QCheck.Test.make ~name:"glift taint implies structural taint" ~count:20
    QCheck.(pair (int_bound 400) (int_bound 63))
    (fun (seed, m) ->
      let c = Netlist.Generators.random_dag ~seed ~inputs:6 ~gates:25 ~outputs:2 in
      let sources = [ 0; 1 ] in
      let inputs = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
      let s = Taint.structural c ~sources in
      let g = Taint.glift c ~sources inputs in
      let ok = ref true in
      Array.iteri (fun i gi -> if gi && not s.(i) then ok := false) g;
      !ok)

let () =
  Alcotest.run "iflow_hls"
    [ ("taint",
       [ Alcotest.test_case "structural reaches" `Quick test_structural_taint_reaches;
         Alcotest.test_case "structural no invention" `Quick test_structural_taint_does_not_invent;
         Alcotest.test_case "glift precision" `Quick test_glift_precision;
         Alcotest.test_case "leaks_to_output" `Quick test_glift_vs_structural_conservatism;
         Alcotest.test_case "never without path" `Quick test_taint_never_without_path;
         Alcotest.test_case "xor always flows" `Quick test_xor_always_flows ]);
      ("qif",
       [ Alcotest.test_case "basic leakages" `Quick test_qif_basic;
         Alcotest.test_case "bijection leaks all" `Quick test_qif_sbox_bijective_leaks_all;
         Alcotest.test_case "residual entropy" `Quick test_qif_residual_entropy;
         Alcotest.test_case "approx matches exact" `Quick test_qif_approx_matches_exact_on_small;
         Alcotest.test_case "approx scales" `Quick test_qif_approx_scales_beyond_exact ]);
      ("covert", [ Alcotest.test_case "prime+probe" `Quick test_covert_channel ]);
      ("hls",
       [ Alcotest.test_case "schedule deps" `Quick test_hls_schedule_respects_deps;
         Alcotest.test_case "resource constraint" `Quick test_hls_resource_constraint;
         Alcotest.test_case "secure binding" `Quick test_hls_secure_binding_no_sharing;
         Alcotest.test_case "flush schedule" `Quick test_hls_flush_schedule ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_glift_subset_of_structural ]) ]
