(* Cross-engine consistency: the toolkit contains three independent
   equivalence/evaluation engines — exhaustive simulation, BDDs, and the
   CDCL SAT solver. Any disagreement among them is a bug in one of the
   substrates, so random designs are pushed through all three. Also
   includes cross-checks between independent implementations of the same
   quantity (QMC cover vs truth table vs synthesized netlist; QIF model
   counting vs BDD model counting; STA vs event-simulation settle time). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Tt = Logic.Truth_table
module Bdd = Logic.Bdd
module Rng = Eda_util.Rng

(* Build a BDD for output [k] of a combinational circuit. *)
let bdd_of_output mgr c ~output =
  let n = Circuit.node_count c in
  let node_bdd = Array.make n Bdd.False in
  let input_index = Hashtbl.create 16 in
  Array.iteri (fun k id -> Hashtbl.replace input_index id k) (Circuit.inputs c);
  for i = 0 to n - 1 do
    let nd = Circuit.node c i in
    let f k = node_bdd.(nd.Circuit.fanins.(k)) in
    node_bdd.(i) <-
      (match nd.Circuit.kind with
       | Gate.Input -> Bdd.bvar mgr (Hashtbl.find input_index i)
       | Gate.Const false -> Bdd.False
       | Gate.Const true -> Bdd.True
       | Gate.Buf -> f 0
       | Gate.Not -> Bdd.neg mgr (f 0)
       | Gate.And -> Bdd.band mgr (f 0) (f 1)
       | Gate.Nand -> Bdd.neg mgr (Bdd.band mgr (f 0) (f 1))
       | Gate.Or -> Bdd.bor mgr (f 0) (f 1)
       | Gate.Nor -> Bdd.neg mgr (Bdd.bor mgr (f 0) (f 1))
       | Gate.Xor -> Bdd.bxor mgr (f 0) (f 1)
       | Gate.Xnor -> Bdd.neg mgr (Bdd.bxor mgr (f 0) (f 1))
       | Gate.Mux ->
         (* s ? b : a *)
         Bdd.bor mgr
           (Bdd.band mgr (f 0) (f 2))
           (Bdd.band mgr (Bdd.neg mgr (f 0)) (f 1))
       | Gate.Dff -> invalid_arg "bdd_of_output: sequential circuit")
  done;
  node_bdd.((Circuit.output_ids c).(output))

let test_bdd_matches_simulation () =
  for seed = 0 to 15 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:35 ~outputs:2 in
    let mgr = Bdd.manager () in
    for out = 0 to 1 do
      let bdd = bdd_of_output mgr c ~output:out in
      for m = 0 to 63 do
        let inputs = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d out %d m %d" seed out m)
          (Netlist.Sim.eval c inputs).(out)
          (Bdd.eval bdd (fun v -> inputs.(v)))
      done
    done
  done

let test_three_engines_agree_on_equivalence () =
  (* For random pairs: sim-exhaustive, BDD-canonical and SAT-miter must
     return the same verdict. *)
  for trial = 0 to 11 do
    let a = Gen.random_dag ~seed:trial ~inputs:5 ~gates:25 ~outputs:1 in
    let b = Gen.random_dag ~seed:(trial + 100) ~inputs:5 ~gates:25 ~outputs:1 in
    let pair = if trial mod 2 = 0 then (a, a) else (a, b) in
    let x, y = pair in
    let sim = Netlist.Sim.equivalent_exhaustive x y in
    let sat = Sat.Cnf.check_equivalence x y = None in
    let mgr = Bdd.manager () in
    let bdd = Bdd.equal (bdd_of_output mgr x ~output:0) (bdd_of_output mgr y ~output:0) in
    Alcotest.(check bool) (Printf.sprintf "trial %d sim=sat" trial) sim sat;
    Alcotest.(check bool) (Printf.sprintf "trial %d sim=bdd" trial) sim bdd
  done

let test_synthesis_pipeline_all_engines () =
  (* The full optimizer must be equivalence-preserving under all engines. *)
  for seed = 20 to 26 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:1 in
    let opt = Synth.Flow.optimize c in
    Alcotest.(check bool) "sat agrees" true (Sat.Cnf.check_equivalence c opt = None);
    let mgr = Bdd.manager () in
    Alcotest.(check bool) "bdd agrees" true
      (Bdd.equal (bdd_of_output mgr c ~output:0) (bdd_of_output mgr opt ~output:0))
  done

let test_qmc_vs_bdd_model_count () =
  (* The QMC cover, the truth table and the BDD must agree on the number
     of satisfying assignments. *)
  let rng = Rng.create 7 in
  for _ = 1 to 30 do
    let bits = Rng.int rng 65536 in
    let tt = Tt.create 4 (fun m -> (bits lsr m) land 1 = 1) in
    let mgr = Bdd.manager () in
    let bdd = Bdd.of_truth_table mgr tt in
    Alcotest.(check (float 1e-9)) "tt vs bdd count"
      (Float.of_int (Tt.count_ones tt))
      (Bdd.count_models bdd ~nvars:4);
    let cover = Logic.Qmc.minimize tt in
    let covered =
      List.length (List.filter (fun m -> List.exists (fun c -> Logic.Cube.covers c m) cover)
                     (List.init 16 (fun m -> m)))
    in
    Alcotest.(check int) "cover count" (Tt.count_ones tt) covered
  done

let test_qif_vs_bdd_count () =
  (* Shannon-leakage partition sizes from simulation enumeration must match
     BDD model counts of the output cofactors. *)
  let c = Gen.parity_tree 5 in
  let mgr = Bdd.manager () in
  let bdd = bdd_of_output mgr c ~output:0 in
  let ones = Bdd.count_models bdd ~nvars:5 in
  let partition =
    Iflow.Qif.output_partition c ~secret:[ 0; 1; 2; 3; 4 ] ~public_values:(Array.make 5 false)
  in
  let from_qif =
    (* parity: two classes of 16 each. *)
    List.sort compare partition
  in
  Alcotest.(check (list int)) "parity split" [ 16; 16 ] from_qif;
  Alcotest.(check (float 1e-9)) "bdd ones" 16.0 ones

let test_sta_bounds_event_sim () =
  (* No event in the transport-delay simulation can occur after the STA
     critical-path arrival (same delay model). *)
  let rng = Rng.create 9 in
  for seed = 30 to 40 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:3 in
    let report = Timing.Sta.analyze c in
    let max_arrival = Array.fold_left Float.max 0.0 report.Timing.Sta.arrival in
    let prev = Array.init 6 (fun _ -> Rng.bool rng) in
    let next = Array.init 6 (fun _ -> Rng.bool rng) in
    let transitions = Timing.Event_sim.cycle c ~prev_inputs:prev ~next_inputs:next in
    List.iter
      (fun tr ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d event at %.0f <= STA %.0f" seed tr.Timing.Event_sim.time max_arrival)
          true
          (tr.Timing.Event_sim.time <= max_arrival +. 1e-9))
      transitions
  done

let test_word_sim_matches_scalar_on_all_slots () =
  let rng = Rng.create 11 in
  for seed = 50 to 55 do
    let c = Gen.random_dag ~seed ~inputs:8 ~gates:50 ~outputs:3 in
    (* 63 random patterns packed in words. *)
    let patterns = Array.init 63 (fun _ -> Array.init 8 (fun _ -> Rng.bool rng)) in
    let words =
      Array.init 8 (fun i ->
          let w = ref 0 in
          for s = 62 downto 0 do
            w := (!w lsl 1) lor (if patterns.(s).(i) then 1 else 0)
          done;
          !w)
    in
    let word_outs = Netlist.Sim.eval_word c words in
    Array.iteri
      (fun s pattern ->
        let scalar = Netlist.Sim.eval c pattern in
        Array.iteri
          (fun k w ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d slot %d out %d" seed s k)
              scalar.(k)
              ((w lsr s) land 1 = 1))
          word_outs)
      patterns
  done

let prop_solver_models_satisfy_circuit_constraints =
  QCheck.Test.make ~name:"SAT models respect circuit semantics" ~count:15
    QCheck.(int_bound 400)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:6 ~gates:30 ~outputs:2 in
      let env = Sat.Cnf.encode c in
      (* Force output 0 true if satisfiable; the model must then simulate
         to outputs consistent with every model variable. *)
      match Sat.Cnf.satisfiable_output c ~output:0 with
      | None -> true
      | Some witness ->
        ignore env;
        (Netlist.Sim.eval c witness).(0))

let () =
  Alcotest.run "cross_engine"
    [ ("engines",
       [ Alcotest.test_case "bdd vs simulation" `Quick test_bdd_matches_simulation;
         Alcotest.test_case "three-engine equivalence" `Quick test_three_engines_agree_on_equivalence;
         Alcotest.test_case "synthesis under all engines" `Quick test_synthesis_pipeline_all_engines ]);
      ("counting",
       [ Alcotest.test_case "qmc vs bdd vs tt" `Quick test_qmc_vs_bdd_model_count;
         Alcotest.test_case "qif vs bdd" `Quick test_qif_vs_bdd_count ]);
      ("timing",
       [ Alcotest.test_case "sta bounds event sim" `Quick test_sta_bounds_event_sim ]);
      ("simulation",
       [ Alcotest.test_case "word sim all slots" `Quick test_word_sim_matches_scalar_on_all_slots ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_solver_models_satisfy_circuit_constraints ]) ]
