(* Tests for synthesis passes: function preservation, actual optimization,
   protection barriers, basis conversion, XOR re-association. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Sim = Netlist.Sim
module Rng = Eda_util.Rng

let gates c = (Circuit.stats c).Circuit.gates

let build_with_redundancy () =
  (* Circuit with constants, double negation, duplicate gates. *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let one = Circuit.add_const c true in
  let a_and_1 = Circuit.add_gate c Gate.And [ a; one ] in  (* = a *)
  let nn = Circuit.add_gate c Gate.Not [ Circuit.add_gate c Gate.Not [ b ] ] in  (* = b *)
  let x1 = Circuit.add_gate c Gate.Xor [ a_and_1; nn ] in
  let x2 = Circuit.add_gate c Gate.Xor [ a; b ] in  (* duplicate of x1 *)
  let y = Circuit.add_gate c Gate.Or [ x1; x2 ] in  (* = x1 *)
  Circuit.set_output c "y" y;
  c

let test_constprop_simplifies () =
  let c = build_with_redundancy () in
  let opt = Synth.Rewrite.constant_propagation c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt);
  Alcotest.(check bool) "smaller" true (gates opt < gates c)

let test_constprop_folds_constants () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let zero = Circuit.add_const c false in
  let g = Circuit.add_gate c Gate.And [ a; zero ] in
  let h = Circuit.add_gate c Gate.Or [ g; a ] in  (* = a *)
  Circuit.set_output c "y" h;
  let opt = Synth.Rewrite.constant_propagation c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt);
  Alcotest.(check int) "all logic folded" 0 (gates opt)

let test_constprop_xor_rules () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let x = Circuit.add_gate c Gate.Xor [ a; a ] in  (* = 0 *)
  let one = Circuit.add_const c true in
  let y = Circuit.add_gate c Gate.Xnor [ x; one ] in  (* = x = 0... xnor(0,1)=0 *)
  Circuit.set_output c "y" y;
  let opt = Synth.Rewrite.constant_propagation c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt);
  Alcotest.(check int) "fully constant" 0 (gates opt)

let test_strash_merges_duplicates () =
  let c = build_with_redundancy () in
  let opt = Synth.Rewrite.strash c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt)

let test_strash_commutative () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let g1 = Circuit.add_gate c Gate.And [ a; b ] in
  let g2 = Circuit.add_gate c Gate.And [ b; a ] in
  let y = Circuit.add_gate c Gate.Xor [ g1; g2 ] in  (* = 0 after merge *)
  Circuit.set_output c "y" y;
  let opt = Synth.Rewrite.strash c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt);
  (* After strash the two ANDs merge; constprop then kills the XOR. *)
  let opt2 = Synth.Rewrite.constant_propagation opt in
  Alcotest.(check int) "xor(x,x) collapsed" 0 (gates opt2)

let test_optimize_random_dags () =
  for seed = 0 to 14 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:3 in
    let opt = Synth.Flow.optimize c in
    Alcotest.(check bool) (Printf.sprintf "seed %d equivalent" seed) true
      (Sim.equivalent_exhaustive c opt);
    Alcotest.(check bool) (Printf.sprintf "seed %d not larger" seed) true
      (gates opt <= gates c)
  done

let test_basis_conversion () =
  for seed = 20 to 30 do
    let c = Gen.random_dag ~seed ~inputs:5 ~gates:30 ~outputs:2 in
    let axn = Synth.Basis.to_and_xor_not c in
    Alcotest.(check bool) (Printf.sprintf "seed %d in basis" seed) true (Synth.Basis.in_basis axn);
    Alcotest.(check bool) (Printf.sprintf "seed %d equivalent" seed) true
      (Sim.equivalent_exhaustive c axn)
  done

let test_basis_mux () =
  let c = Gen.mux_tree 2 in
  let axn = Synth.Basis.to_and_xor_not c in
  Alcotest.(check bool) "in basis" true (Synth.Basis.in_basis axn);
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c axn)

let test_xor_reassoc_preserves_function () =
  for seed = 40 to 50 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:3 in
    let r = Synth.Xor_reassoc.run c in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (Sim.equivalent_exhaustive c r)
  done

let test_xor_reassoc_regroups () =
  (* Chain (((p1 ^ r) ^ p2) ^ p3) with p_i sharing input a: the pass must
     regroup the products adjacently, changing the intermediate wires. *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b1 = Circuit.add_input ~name:"b1" c in
  let b2 = Circuit.add_input ~name:"b2" c in
  let b3 = Circuit.add_input ~name:"b3" c in
  let r = Circuit.add_input ~name:"r" c in
  let p1 = Circuit.add_gate c Gate.And [ a; b1 ] in
  let p2 = Circuit.add_gate c Gate.And [ a; b2 ] in
  let p3 = Circuit.add_gate c Gate.And [ a; b3 ] in
  let t1 = Circuit.add_gate c Gate.Xor [ p1; r ] in
  let t2 = Circuit.add_gate c Gate.Xor [ t1; p2 ] in
  let y = Circuit.add_gate c Gate.Xor [ t2; p3 ] in
  Circuit.set_output c "y" y;
  let reassoc = Synth.Xor_reassoc.run c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c reassoc);
  (* The first XOR of the rebuilt chain must combine two AND leaves (the
     factoring-friendly grouping), not an AND with the random input. *)
  let first_xor =
    let found = ref None in
    for i = 0 to Circuit.node_count reassoc - 1 do
      if !found = None && Circuit.kind reassoc i = Gate.Xor then found := Some i
    done;
    Option.get !found
  in
  let fanin_kinds =
    Array.map (fun f -> Circuit.kind reassoc f) (Circuit.fanins reassoc first_xor)
  in
  Alcotest.(check bool) "first xor combines two products" true
    (Array.for_all (fun k -> k = Gate.And) fanin_kinds)

let test_xor_reassoc_protection () =
  (* With every net protected, the circuit structure is unchanged. *)
  let masked = Sidechannel.Isw.transform (Sidechannel.Leakage.private_and_source ()) in
  let before = Circuit.node_count masked.Sidechannel.Isw.circuit in
  let after =
    Synth.Xor_reassoc.run ~protect:Sidechannel.Isw.protected_name masked.Sidechannel.Isw.circuit
  in
  (* Protected XOR chains are kept verbatim: same node count post sweep. *)
  Alcotest.(check int) "structure preserved" before (Circuit.node_count after)

let test_balanced_strategy_reduces_depth () =
  let c = Circuit.create () in
  let xs = List.init 16 (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) c) in
  let y = Circuit.reduce_chain c Gate.Xor xs in
  Circuit.set_output c "y" y;
  let before_depth = Timing.Sta.depth c in
  let balanced = Synth.Xor_reassoc.run ~strategy:Synth.Xor_reassoc.Balanced c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c balanced);
  Alcotest.(check bool) "depth reduced" true (Timing.Sta.depth balanced < before_depth);
  Alcotest.(check int) "log depth" 4 (Timing.Sta.depth balanced)

let test_ppa_model () =
  let c = Gen.alu 4 in
  let p = Synth.Flow.ppa c in
  Alcotest.(check bool) "area positive" true (p.Synth.Flow.area > 0.0);
  Alcotest.(check bool) "delay positive" true (p.Synth.Flow.delay_ps > 0.0);
  Alcotest.(check bool) "gate count sane" true (p.Synth.Flow.gate_count = gates c)

let test_optimize_secure_preserves_function () =
  let masked = Sidechannel.Isw.transform (Sidechannel.Leakage.private_and_source ()) in
  let c = masked.Sidechannel.Isw.circuit in
  let opt = Synth.Flow.optimize_secure ~protect:Sidechannel.Isw.protected_name c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt)

let prop_optimize_never_changes_function =
  QCheck.Test.make ~name:"optimize preserves function" ~count:12
    QCheck.(int_bound 900)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:5 ~gates:35 ~outputs:2 in
      Sim.equivalent_exhaustive c (Synth.Flow.optimize c))

let prop_basis_preserves_function =
  QCheck.Test.make ~name:"basis conversion preserves function" ~count:12
    QCheck.(int_bound 900)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:5 ~gates:35 ~outputs:2 in
      Sim.equivalent_exhaustive c (Synth.Basis.to_and_xor_not c))

let () =
  Alcotest.run "synth"
    [ ("rewrite",
       [ Alcotest.test_case "constprop simplifies" `Quick test_constprop_simplifies;
         Alcotest.test_case "constprop folds constants" `Quick test_constprop_folds_constants;
         Alcotest.test_case "constprop xor rules" `Quick test_constprop_xor_rules;
         Alcotest.test_case "strash merges duplicates" `Quick test_strash_merges_duplicates;
         Alcotest.test_case "strash commutative" `Quick test_strash_commutative;
         Alcotest.test_case "optimize random dags" `Quick test_optimize_random_dags ]);
      ("basis",
       [ Alcotest.test_case "random dags" `Quick test_basis_conversion;
         Alcotest.test_case "mux trees" `Quick test_basis_mux ]);
      ("xor_reassoc",
       [ Alcotest.test_case "preserves function" `Quick test_xor_reassoc_preserves_function;
         Alcotest.test_case "regroups shared products" `Quick test_xor_reassoc_regroups;
         Alcotest.test_case "respects protection" `Quick test_xor_reassoc_protection;
         Alcotest.test_case "balanced reduces depth" `Quick test_balanced_strategy_reduces_depth ]);
      ("flow",
       [ Alcotest.test_case "ppa model" `Quick test_ppa_model;
         Alcotest.test_case "secure flow preserves function" `Quick test_optimize_secure_preserves_function ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_optimize_never_changes_function; prop_basis_preserves_function ]) ]
