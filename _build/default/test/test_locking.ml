(* Tests for logic locking, the SAT attack, SFLL-HD and structural attacks,
   plus camouflaging (which reduces to locking). *)

module Circuit = Netlist.Circuit
module Gen = Netlist.Generators
module Lock = Locking.Lock
module Sat_attack = Locking.Sat_attack
module Rng = Eda_util.Rng

let test_epic_correct_key_restores () =
  let rng = Rng.create 1 in
  List.iter
    (fun (name, source, bits) ->
      let locked = Lock.epic rng ~key_bits:bits source in
      Alcotest.(check bool) (name ^ " verified") true (Lock.verify_correct locked ~original:source = None))
    [ ("c17", Gen.c17 (), 4); ("adder", Gen.ripple_adder 4, 10); ("alu", Gen.alu 4, 16) ]

let test_epic_wrong_key_corrupts () =
  let rng = Rng.create 2 in
  let source = Gen.alu 4 in
  let locked = Lock.epic rng ~key_bits:12 source in
  let wrong = Array.map not locked.Lock.correct_key in
  let corruption = Lock.corruption rng locked ~original:source ~wrong_key:wrong ~patterns:300 in
  Alcotest.(check bool) "wrong key corrupts" true (corruption > 0.1)

let test_epic_single_wrong_bit_corrupts () =
  let rng = Rng.create 3 in
  let source = Gen.ripple_adder 4 in
  let locked = Lock.epic rng ~key_bits:8 source in
  let wrong = Array.copy locked.Lock.correct_key in
  wrong.(3) <- not wrong.(3);
  let corruption = Lock.corruption rng locked ~original:source ~wrong_key:wrong ~patterns:300 in
  Alcotest.(check bool) "one wrong bit corrupts" true (corruption > 0.0)

let test_eval_and_apply_key_agree () =
  let rng = Rng.create 4 in
  let source = Gen.comparator 4 in
  let locked = Lock.epic rng ~key_bits:6 source in
  let unlocked = Lock.apply_key locked ~key:locked.Lock.correct_key in
  for _ = 1 to 50 do
    let data = Array.init 8 (fun _ -> Rng.bool rng) in
    Alcotest.(check bool) "agree" true
      (Lock.eval locked ~key:locked.Lock.correct_key ~data = Netlist.Sim.eval unlocked data)
  done

let test_sat_attack_recovers_epic () =
  let rng = Rng.create 5 in
  List.iter
    (fun (name, source, bits) ->
      let locked = Lock.epic rng ~key_bits:bits source in
      let result = Sat_attack.run ~oracle:(Sat_attack.oracle_of_circuit source) locked in
      Alcotest.(check bool) (name ^ " attack succeeds") true
        (Sat_attack.recovered_key_correct locked ~original:source result);
      Alcotest.(check bool) (name ^ " few DIPs") true
        (result.Sat_attack.iterations <= 40))
    [ ("c17", Gen.c17 (), 6); ("alu", Gen.alu 4, 16) ]

let test_sat_attack_key_not_bitwise_equal_but_equivalent () =
  (* Multiple keys can be functionally correct; the attack's guarantee is
     functional equivalence only — assert exactly that. *)
  let rng = Rng.create 6 in
  let source = Gen.parity_tree 12 in
  let locked = Lock.epic rng ~key_bits:8 source in
  let result = Sat_attack.run ~oracle:(Sat_attack.oracle_of_circuit source) locked in
  (match result.Sat_attack.key with
   | None -> Alcotest.fail "attack did not converge"
   | Some key ->
     let unlocked = Lock.apply_key locked ~key in
     Alcotest.(check bool) "equivalent" true (Sat.Cnf.check_equivalence source unlocked = None))

let test_sfll_verifies_and_resists () =
  let rng = Rng.create 7 in
  let source = Gen.comparator 4 in
  let sfll = Locking.Sfll.lock rng ~h:2 source in
  Alcotest.(check bool) "correct key restores" true
    (Lock.verify_correct sfll ~original:source = None);
  let epic = Lock.epic rng ~key_bits:7 source in
  let r_sfll = Sat_attack.run ~max_iterations:400 ~oracle:(Sat_attack.oracle_of_circuit source) sfll in
  let r_epic = Sat_attack.run ~max_iterations:400 ~oracle:(Sat_attack.oracle_of_circuit source) epic in
  Alcotest.(check bool) "sfll needs more DIPs than epic" true
    (r_sfll.Sat_attack.iterations > r_epic.Sat_attack.iterations)

let test_sfll_wrong_key_corrupts_sparsely () =
  let rng = Rng.create 8 in
  let source = Gen.comparator 4 in
  let sfll = Locking.Sfll.lock rng ~h:1 source in
  (* A wrong key corrupts only inputs at HD 1 from it: low corruption. *)
  let wrong = Array.map not sfll.Lock.correct_key in
  let corruption = Lock.corruption rng sfll ~original:source ~wrong_key:wrong ~patterns:400 in
  Alcotest.(check bool) "sparse corruption" true (corruption < 0.2)

let test_structural_attack_story () =
  let rng = Rng.create 9 in
  let source = Gen.alu 4 in
  let xor_only = Lock.epic rng ~style:Lock.Xor_only ~key_bits:16 source in
  let hidden = Lock.epic rng ~style:Lock.Polarity_hidden ~key_bits:16 source in
  let acc_naive_xor = Locking.Structural.accuracy ~strength:Locking.Structural.Naive xor_only in
  let acc_naive_hid = Locking.Structural.accuracy ~strength:Locking.Structural.Naive hidden in
  let acc_recon_hid =
    Locking.Structural.accuracy ~strength:Locking.Structural.Local_reconstruction hidden
  in
  Alcotest.(check (float 1e-9)) "naive breaks xor-only" 1.0 acc_naive_xor;
  Alcotest.(check bool) "hiding fools naive" true (acc_naive_hid < 0.8);
  Alcotest.(check (float 1e-9)) "reconstruction breaks hiding" 1.0 acc_recon_hid

let test_camouflage_preserves_function () =
  let rng = Rng.create 10 in
  let source = Gen.c17 () in
  let camo = Camo.Camouflage.apply rng ~cells:3 source in
  (* The fab view is the original function. *)
  Alcotest.(check bool) "fab view unchanged" true
    (Netlist.Sim.equivalent_exhaustive source camo.Camo.Camouflage.circuit)

let test_camouflage_locked_reduction () =
  let rng = Rng.create 11 in
  let source = Gen.c17 () in
  let camo = Camo.Camouflage.apply rng ~cells:3 source in
  let locked = Camo.Camouflage.to_locked camo in
  (* The correct configuration reproduces the original function. *)
  Alcotest.(check bool) "correct config" true
    (Lock.verify_correct locked ~original:source = None)

let test_decamouflage_succeeds () =
  let rng = Rng.create 12 in
  let source = Gen.alu 4 in
  let camo = Camo.Camouflage.apply rng ~cells:5 source in
  let iterations, success = Camo.Camouflage.decamouflage camo in
  Alcotest.(check bool) "success" true success;
  Alcotest.(check bool) "bounded DIPs" true (iterations <= 64)

let test_camouflage_area_overhead () =
  let rng = Rng.create 13 in
  let source = Gen.c17 () in
  let camo = Camo.Camouflage.apply rng ~cells:4 source in
  let overhead = Camo.Camouflage.area_overhead camo in
  Alcotest.(check bool) "overhead >= 1" true (overhead >= 1.0)

let prop_locking_roundtrip_random_circuits =
  QCheck.Test.make ~name:"epic locking verifies on random circuits" ~count:8
    QCheck.(int_bound 500)
    (fun seed ->
      let rng = Rng.create seed in
      let source = Gen.random_dag ~seed ~inputs:5 ~gates:30 ~outputs:2 in
      let locked = Lock.epic rng ~key_bits:6 source in
      Lock.verify_correct locked ~original:source = None)

let prop_sat_attack_always_functionally_correct =
  QCheck.Test.make ~name:"sat attack result is always equivalent" ~count:6
    QCheck.(int_bound 500)
    (fun seed ->
      let rng = Rng.create seed in
      let source = Gen.random_dag ~seed ~inputs:5 ~gates:25 ~outputs:2 in
      let locked = Lock.epic rng ~key_bits:6 source in
      let result = Sat_attack.run ~oracle:(Sat_attack.oracle_of_circuit source) locked in
      Sat_attack.recovered_key_correct locked ~original:source result)

let () =
  Alcotest.run "locking"
    [ ("epic",
       [ Alcotest.test_case "correct key restores" `Quick test_epic_correct_key_restores;
         Alcotest.test_case "wrong key corrupts" `Quick test_epic_wrong_key_corrupts;
         Alcotest.test_case "single wrong bit" `Quick test_epic_single_wrong_bit_corrupts;
         Alcotest.test_case "eval/apply_key agree" `Quick test_eval_and_apply_key_agree ]);
      ("sat_attack",
       [ Alcotest.test_case "recovers epic keys" `Quick test_sat_attack_recovers_epic;
         Alcotest.test_case "equivalence not bit-equality" `Quick test_sat_attack_key_not_bitwise_equal_but_equivalent ]);
      ("sfll",
       [ Alcotest.test_case "verifies and resists" `Slow test_sfll_verifies_and_resists;
         Alcotest.test_case "sparse corruption" `Quick test_sfll_wrong_key_corrupts_sparsely ]);
      ("structural",
       [ Alcotest.test_case "sail story" `Quick test_structural_attack_story ]);
      ("camouflage",
       [ Alcotest.test_case "fab view unchanged" `Quick test_camouflage_preserves_function;
         Alcotest.test_case "locked reduction" `Quick test_camouflage_locked_reduction;
         Alcotest.test_case "decamouflage" `Quick test_decamouflage_succeeds;
         Alcotest.test_case "area overhead" `Quick test_camouflage_area_overhead ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_locking_roundtrip_random_circuits; prop_sat_attack_always_functionally_correct ]) ]
