(* Tests for the software crypto references and their netlist forms. *)

module Aes = Crypto.Aes
module Present = Crypto.Present
module Sbox = Crypto.Sbox_circuit
module Rng = Eda_util.Rng

let test_aes_kat () = Alcotest.(check bool) "FIPS-197 C.1" true (Aes.self_test ())

let test_aes_sbox_properties () =
  (* Bijection; no fixed points; matches the affine definition at spots. *)
  let seen = Array.make 256 false in
  Array.iter (fun y -> seen.(y) <- true) Aes.sbox;
  Alcotest.(check bool) "bijective" true (Array.for_all (fun b -> b) seen);
  Alcotest.(check int) "sbox(0)" 0x63 Aes.sbox.(0);
  Alcotest.(check int) "sbox(1)" 0x7C Aes.sbox.(1);
  Alcotest.(check int) "sbox(0x53)" 0xED Aes.sbox.(0x53);
  for x = 0 to 255 do
    Alcotest.(check int) "inverse" x Aes.inv_sbox.(Aes.sbox.(x))
  done

let test_aes_roundtrip () =
  let rng = Rng.create 42 in
  for _ = 1 to 20 do
    let key = Aes.random_key rng in
    let pt = Aes.random_block rng in
    let ks = Aes.expand_key key in
    Alcotest.(check bool) "decrypt inverts encrypt" true (Aes.decrypt ks (Aes.encrypt ks pt) = pt)
  done

let test_aes_gf_arithmetic () =
  Alcotest.(check int) "2*0x80 wraps" 0x1B (Aes.gf_mul 2 0x80);
  Alcotest.(check int) "0x57*0x83" 0xC1 (Aes.gf_mul 0x57 0x83);
  for x = 1 to 255 do
    Alcotest.(check int) (Printf.sprintf "inv %d" x) 1 (Aes.gf_mul x (Aes.gf_inv x))
  done

let test_aes_avalanche () =
  (* Single plaintext bit flip changes ~half the ciphertext bits. *)
  let rng = Rng.create 9 in
  let key = Aes.random_key rng in
  let ks = Aes.expand_key key in
  let pt = Aes.random_block rng in
  let ct = Aes.encrypt ks pt in
  let pt' = Array.copy pt in
  pt'.(0) <- pt'.(0) lxor 1;
  let ct' = Aes.encrypt ks pt' in
  let hd = ref 0 in
  Array.iteri (fun i b -> hd := !hd + Eda_util.Stats.hamming_weight ~bits:8 (b lxor ct'.(i))) ct;
  Alcotest.(check bool) "avalanche" true (!hd > 40 && !hd < 90)

let test_present_kat () = Alcotest.(check bool) "paper test vector" true (Present.self_test ())

let test_present_roundtrip () =
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let key = { Present.hi = Rng.next_int64 rng; lo = Rng.int rng 65536 } in
    let pt = Rng.next_int64 rng in
    Alcotest.(check bool) "roundtrip" true
      (Int64.equal (Present.decrypt key (Present.encrypt key pt)) pt)
  done

let test_present_sbox_bijective () =
  let seen = Array.make 16 false in
  Array.iter (fun y -> seen.(y) <- true) Present.sbox;
  Alcotest.(check bool) "bijective" true (Array.for_all (fun b -> b) seen)

let test_present_p_layer_involution_structure () =
  (* P then inverse P is identity on random states. *)
  let rng = Rng.create 6 in
  for _ = 1 to 50 do
    let s = Rng.next_int64 rng in
    Alcotest.(check bool) "p then invp" true
      (Int64.equal (Present.inv_p_layer (Present.p_layer s)) s)
  done

let test_aes_sbox_netlist () =
  let c = Sbox.aes_sbox () in
  for x = 0 to 255 do
    let out = Sbox.bits_to_byte (Netlist.Sim.eval c (Sbox.byte_to_bits x)) in
    Alcotest.(check int) (Printf.sprintf "sbox %d" x) Aes.sbox.(x) out
  done

let test_aes_inv_sbox_netlist () =
  let c = Sbox.aes_inv_sbox () in
  for x = 0 to 255 do
    let out = Sbox.bits_to_byte (Netlist.Sim.eval c (Sbox.byte_to_bits x)) in
    Alcotest.(check int) (Printf.sprintf "inv sbox %d" x) Aes.inv_sbox.(x) out
  done

let test_present_sbox_netlist () =
  let c = Sbox.present_sbox () in
  for x = 0 to 15 do
    let out =
      Netlist.Sim.eval c (Array.init 4 (fun i -> (x lsr i) land 1 = 1))
    in
    let v = ref 0 in
    for i = 3 downto 0 do
      v := (!v lsl 1) lor (if out.(i) then 1 else 0)
    done;
    Alcotest.(check int) (Printf.sprintf "present sbox %d" x) Present.sbox.(x) !v
  done

let test_datapath_matches_software () =
  let c = Sbox.aes_round_datapath () in
  let rng = Rng.create 12 in
  for _ = 1 to 100 do
    let p = Rng.int rng 256 and k = Rng.int rng 256 in
    let inputs = Array.append (Sbox.byte_to_bits p) (Sbox.byte_to_bits k) in
    Alcotest.(check int) "sbox(p^k)" Aes.sbox.(p lxor k)
      (Sbox.bits_to_byte (Netlist.Sim.eval c inputs))
  done

let test_registered_datapath () =
  let c = Sbox.aes_round_registered () in
  Alcotest.(check int) "8 registers" 8 (Netlist.Circuit.num_dffs c);
  (* After one clock cycle the registers hold sbox(p ^ k). *)
  let p = 0x3C and k = 0xA7 in
  let inputs = Array.append (Sbox.byte_to_bits p) (Sbox.byte_to_bits k) in
  let state0 = Array.make 8 false in
  let _, state1 = Netlist.Sim.step c ~state:state0 inputs in
  Alcotest.(check int) "captured" Aes.sbox.(p lxor k) (Sbox.bits_to_byte state1)

let test_byte_conversions () =
  for v = 0 to 255 do
    Alcotest.(check int) "roundtrip" v (Sbox.bits_to_byte (Sbox.byte_to_bits v))
  done

let prop_aes_key_sensitivity =
  QCheck.Test.make ~name:"different keys give different ciphertexts" ~count:30
    QCheck.(pair (int_bound 10000) (int_bound 10000))
    (fun (s1, s2) ->
      QCheck.assume (s1 <> s2);
      let rng1 = Rng.create s1 and rng2 = Rng.create s2 in
      let k1 = Aes.random_key rng1 and k2 = Aes.random_key rng2 in
      let pt = Array.make 16 0 in
      k1 = k2
      || Aes.encrypt (Aes.expand_key k1) pt <> Aes.encrypt (Aes.expand_key k2) pt)

let () =
  Alcotest.run "crypto"
    [ ("aes",
       [ Alcotest.test_case "known answer" `Quick test_aes_kat;
         Alcotest.test_case "sbox properties" `Quick test_aes_sbox_properties;
         Alcotest.test_case "roundtrip" `Quick test_aes_roundtrip;
         Alcotest.test_case "gf arithmetic" `Quick test_aes_gf_arithmetic;
         Alcotest.test_case "avalanche" `Quick test_aes_avalanche ]);
      ("present",
       [ Alcotest.test_case "known answer" `Quick test_present_kat;
         Alcotest.test_case "roundtrip" `Quick test_present_roundtrip;
         Alcotest.test_case "sbox bijective" `Quick test_present_sbox_bijective;
         Alcotest.test_case "p layer inverse" `Quick test_present_p_layer_involution_structure ]);
      ("netlists",
       [ Alcotest.test_case "aes sbox" `Quick test_aes_sbox_netlist;
         Alcotest.test_case "aes inv sbox" `Quick test_aes_inv_sbox_netlist;
         Alcotest.test_case "present sbox" `Quick test_present_sbox_netlist;
         Alcotest.test_case "round datapath" `Quick test_datapath_matches_software;
         Alcotest.test_case "registered datapath" `Quick test_registered_datapath;
         Alcotest.test_case "byte conversions" `Quick test_byte_conversions ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_aes_key_sensitivity ]) ]
