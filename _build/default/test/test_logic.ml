(* Tests for truth tables, cubes, Quine-McCluskey and BDDs. *)

module Tt = Logic.Truth_table
module Cube = Logic.Cube
module Qmc = Logic.Qmc
module Bdd = Logic.Bdd

let tt = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (Tt.to_string t)) Tt.equal

let test_tt_basic () =
  let a = Tt.var 2 0 and b = Tt.var 2 1 in
  Alcotest.(check string) "var 0" "0101" (Tt.to_string a);
  Alcotest.(check string) "var 1" "0011" (Tt.to_string b);
  Alcotest.(check string) "and" "0001" (Tt.to_string (Tt.land_ a b));
  Alcotest.(check string) "or" "0111" (Tt.to_string (Tt.lor_ a b));
  Alcotest.(check string) "xor" "0110" (Tt.to_string (Tt.lxor_ a b));
  Alcotest.(check string) "not" "1010" (Tt.to_string (Tt.lnot a))

let test_tt_eval_bits () =
  let f = Tt.lxor_ (Tt.var 3 0) (Tt.var 3 2) in
  Alcotest.(check bool) "101 -> 0" false (Tt.eval_bits f [| true; false; true |]);
  Alcotest.(check bool) "100 -> 1" true (Tt.eval_bits f [| true; false; false |])

let test_tt_cofactor_depends () =
  let a = Tt.var 2 0 and b = Tt.var 2 1 in
  let f = Tt.land_ a b in
  Alcotest.check tt "cofactor a=1 is b" (Tt.cofactor f 0 true) b;
  Alcotest.(check bool) "depends on a" true (Tt.depends_on f 0);
  let g = Tt.lor_ a (Tt.lnot a) in
  Alcotest.(check bool) "tautology ignores a" false (Tt.depends_on g 0);
  Alcotest.(check (list int)) "support" [ 0; 1 ] (Tt.support f)

let test_tt_count () =
  let f = Tt.lxor_ (Tt.var 4 0) (Tt.var 4 1) in
  Alcotest.(check int) "xor balanced" 8 (Tt.count_ones f)

let test_cube_cover () =
  let c = Cube.of_minterm ~arity:3 0b101 in
  Alcotest.(check bool) "covers own minterm" true (Cube.covers c 0b101);
  Alcotest.(check bool) "not others" false (Cube.covers c 0b100);
  Alcotest.(check int) "volume" 1 (Cube.volume c)

let test_cube_combine () =
  let a = Cube.of_minterm ~arity:3 0b101 in
  let b = Cube.of_minterm ~arity:3 0b100 in
  (match Cube.combine a b with
   | Some c ->
     Alcotest.(check bool) "covers both" true (Cube.covers c 0b101 && Cube.covers c 0b100);
     Alcotest.(check int) "volume 2" 2 (Cube.volume c)
   | None -> Alcotest.fail "should combine");
  let d = Cube.of_minterm ~arity:3 0b010 in
  Alcotest.(check bool) "distance 2+ fails" true (Cube.combine a d = None)

let test_qmc_xor_is_irreducible () =
  (* XOR has no combinable minterms: cover is exactly the two minterms. *)
  let f = Tt.lxor_ (Tt.var 2 0) (Tt.var 2 1) in
  let cover = Qmc.minimize f in
  Alcotest.(check int) "cube count" 2 (List.length cover);
  Alcotest.(check bool) "implements" true (Qmc.cover_implements cover f)

let test_qmc_classic () =
  (* Classic example: f = sum m(0,1,2,5,6,7) over 3 vars minimizes to
     4-6 literals. *)
  let minterms = [ 0; 1; 2; 5; 6; 7 ] in
  let f = Tt.create 3 (fun m -> List.mem m minterms) in
  let cover = Qmc.minimize f in
  Alcotest.(check bool) "implements" true (Qmc.cover_implements cover f);
  Alcotest.(check bool) "cost reduced" true (Qmc.cover_cost cover <= 8)

let test_qmc_constant () =
  let f = Tt.constant 3 true in
  let cover = Qmc.minimize f in
  Alcotest.(check bool) "implements" true (Qmc.cover_implements cover f);
  Alcotest.(check int) "single empty cube" 0 (Qmc.cover_cost cover);
  Alcotest.(check (list string)) "false is empty cover" []
    (List.map Cube.to_string (Qmc.minimize (Tt.constant 3 false)))

let test_bdd_basic () =
  let mgr = Bdd.manager () in
  let a = Bdd.bvar mgr 0 and b = Bdd.bvar mgr 1 in
  let f = Bdd.band mgr a b in
  Alcotest.(check bool) "11" true (Bdd.eval f (fun _ -> true));
  Alcotest.(check bool) "10" false (Bdd.eval f (fun v -> v = 0));
  Alcotest.(check bool) "hash consing" true (Bdd.equal f (Bdd.band mgr a b))

let test_bdd_de_morgan () =
  let mgr = Bdd.manager () in
  let a = Bdd.bvar mgr 0 and b = Bdd.bvar mgr 1 in
  let lhs = Bdd.neg mgr (Bdd.band mgr a b) in
  let rhs = Bdd.bor mgr (Bdd.neg mgr a) (Bdd.neg mgr b) in
  Alcotest.(check bool) "de morgan" true (Bdd.equal lhs rhs)

let test_bdd_xor_cancel () =
  let mgr = Bdd.manager () in
  let a = Bdd.bvar mgr 0 in
  Alcotest.(check bool) "a xor a = 0" true (Bdd.is_contradiction (Bdd.bxor mgr a a));
  Alcotest.(check bool) "a or !a = 1" true (Bdd.is_tautology (Bdd.bor mgr a (Bdd.neg mgr a)))

let test_bdd_count_models () =
  let mgr = Bdd.manager () in
  let a = Bdd.bvar mgr 0 and b = Bdd.bvar mgr 1 and c = Bdd.bvar mgr 2 in
  let f = Bdd.bor mgr (Bdd.band mgr a b) c in
  (* a&b | c over 3 vars: c=1 gives 4, c=0 & a&b gives 1 -> 5 models. *)
  Alcotest.(check (float 1e-9)) "models" 5.0 (Bdd.count_models f ~nvars:3)

let test_bdd_of_truth_table () =
  let mgr = Bdd.manager () in
  let f = Tt.lxor_ (Tt.var 3 0) (Tt.land_ (Tt.var 3 1) (Tt.var 3 2)) in
  let bdd = Bdd.of_truth_table mgr f in
  for m = 0 to 7 do
    let assignment v = (m lsr v) land 1 = 1 in
    Alcotest.(check bool) (Printf.sprintf "minterm %d" m) (Tt.eval f m) (Bdd.eval bdd assignment)
  done;
  Alcotest.(check (float 1e-9)) "model count matches" (Float.of_int (Tt.count_ones f))
    (Bdd.count_models bdd ~nvars:3)

(* Properties: QMC covers random functions correctly; BDD ops agree with
   truth tables. *)
let gen_tt3 = QCheck.map (fun bits -> Tt.create 3 (fun m -> (bits lsr m) land 1 = 1)) (QCheck.int_bound 255)

let prop_qmc_correct =
  QCheck.Test.make ~name:"qmc implements arbitrary 3-var function" ~count:100 gen_tt3
    (fun f -> Qmc.cover_implements (Qmc.minimize f) f)

let prop_bdd_matches_tt =
  QCheck.Test.make ~name:"bdd of_truth_table agrees" ~count:100 gen_tt3
    (fun f ->
      let mgr = Bdd.manager () in
      let bdd = Bdd.of_truth_table mgr f in
      List.for_all
        (fun m -> Tt.eval f m = Bdd.eval bdd (fun v -> (m lsr v) land 1 = 1))
        (List.init 8 (fun m -> m)))

let prop_qmc_cost_not_worse_than_minterms =
  QCheck.Test.make ~name:"qmc never worse than raw minterm cover" ~count:100 gen_tt3
    (fun f ->
      let cover = Qmc.minimize f in
      Qmc.cover_cost cover <= 3 * Tt.count_ones f)

let () =
  Alcotest.run "logic"
    [ ("truth_table",
       [ Alcotest.test_case "basic ops" `Quick test_tt_basic;
         Alcotest.test_case "eval_bits" `Quick test_tt_eval_bits;
         Alcotest.test_case "cofactor/depends" `Quick test_tt_cofactor_depends;
         Alcotest.test_case "count_ones" `Quick test_tt_count ]);
      ("cube",
       [ Alcotest.test_case "cover" `Quick test_cube_cover;
         Alcotest.test_case "combine" `Quick test_cube_combine ]);
      ("qmc",
       [ Alcotest.test_case "xor irreducible" `Quick test_qmc_xor_is_irreducible;
         Alcotest.test_case "classic example" `Quick test_qmc_classic;
         Alcotest.test_case "constants" `Quick test_qmc_constant ]);
      ("bdd",
       [ Alcotest.test_case "basic" `Quick test_bdd_basic;
         Alcotest.test_case "de morgan" `Quick test_bdd_de_morgan;
         Alcotest.test_case "xor cancel" `Quick test_bdd_xor_cancel;
         Alcotest.test_case "count models" `Quick test_bdd_count_models;
         Alcotest.test_case "of truth table" `Quick test_bdd_of_truth_table ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_qmc_correct; prop_bdd_matches_tt; prop_qmc_cost_not_worse_than_minterms ]) ]
