(* Tests for Trojan insertion and the four detection techniques. *)

module Circuit = Netlist.Circuit
module Gen = Netlist.Generators
module Insert = Trojan.Insert
module Detect = Trojan.Detect
module Rng = Eda_util.Rng

let test_insertion_preserves_interface () =
  let rng = Rng.create 1 in
  let clean = Gen.alu 4 in
  let troj = Insert.insert rng ~trigger_width:2 ~patterns:2048 clean in
  Alcotest.(check int) "inputs unchanged" (Circuit.num_inputs clean)
    (Circuit.num_inputs troj.Insert.infected);
  Alcotest.(check int) "outputs unchanged" (Circuit.num_outputs clean)
    (Circuit.num_outputs troj.Insert.infected)

let test_trojan_dormant_almost_always () =
  let rng = Rng.create 2 in
  let clean = Gen.alu 4 in
  let troj = Insert.insert rng ~trigger_width:4 ~patterns:4096 clean in
  let prob = Insert.trigger_probability rng troj ~patterns:20000 in
  Alcotest.(check bool) "rare trigger" true (prob < 0.02)

let test_trojan_changes_function_when_triggered () =
  let rng = Rng.create 3 in
  let clean = Gen.alu 4 in
  let troj = Insert.insert rng ~trigger_width:2 ~patterns:2048 clean in
  (* Find a triggering input by exhaustive-ish search. *)
  let ni = Circuit.num_inputs clean in
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < 4096 do
    let inputs = Array.init ni (fun k -> (!i lsr k) land 1 = 1) in
    let values = Netlist.Sim.eval_all troj.Insert.infected inputs in
    if values.(troj.Insert.trigger_node) then begin
      found := true;
      Alcotest.(check bool) "payload flips output" true (Insert.exposed_by clean troj inputs)
    end;
    incr i
  done;
  Alcotest.(check bool) "trigger reachable" true !found

let test_parasitic_payload_keeps_function () =
  let rng = Rng.create 4 in
  let clean = Gen.alu 4 in
  let troj =
    Insert.insert rng ~payload:Insert.Leak_parasitic ~trigger_width:2 ~patterns:2048 clean
  in
  let ni = Circuit.num_inputs clean in
  let same = ref true in
  for m = 0 to 200 do
    let inputs = Array.init ni (fun k -> (m * 37 lsr k) land 1 = 1) in
    let infected_outs = Netlist.Sim.eval troj.Insert.infected inputs in
    if Array.sub infected_outs 0 (Circuit.num_outputs clean) <> Netlist.Sim.eval clean inputs
    then same := false
  done;
  Alcotest.(check bool) "functionally silent" true !same

let test_rare_conditions_are_rare () =
  let rng = Rng.create 5 in
  let clean = Gen.alu 4 in
  let rare = Insert.rare_conditions rng ~patterns:4096 ~count:5 clean in
  let probs = Netlist.Sim.signal_probabilities (Rng.create 99) ~patterns:6300 clean in
  List.iter
    (fun (net, v) ->
      let p = if v then probs.(net) else 1.0 -. probs.(net) in
      Alcotest.(check bool) "condition rare" true (p < 0.45))
    rare

let test_mero_n_detect_improves_exposure () =
  (* Over several random Trojans, higher N must expose at least as many as
     N = 1 (statistical claim; checked on aggregate). *)
  let expose n_detect seed =
    let rng = Rng.create seed in
    let clean = Gen.alu 4 in
    let troj = Insert.insert rng ~trigger_width:2 ~patterns:2048 clean in
    let rare = Insert.rare_conditions rng ~patterns:2048 ~count:10 clean in
    let pats = Detect.mero_patterns rng ~n_detect ~rare ~max_patterns:4000 clean in
    if Detect.functional_detect clean troj pats then 1 else 0
  in
  let total n = List.fold_left (fun acc s -> acc + expose n s) 0 [ 10; 11; 12; 13; 14; 15 ] in
  let low = total 1 and high = total 24 in
  Alcotest.(check bool) (Printf.sprintf "N=24 (%d) >= N=1 (%d)" high low) true (high >= low);
  Alcotest.(check bool) "N=24 exposes most" true (high >= 4)

let test_fingerprint_separates () =
  let rng = Rng.create 6 in
  let c = Gen.alu 4 in
  let tp, fp =
    Detect.fingerprint_detection rng ~chips:40 ~sigma:0.02 ~extra_load_ps:30.0
      ~threshold_sigmas:3.0 c ~tapped:[ 20; 25; 30 ]
  in
  Alcotest.(check bool) "high TPR" true (tp > 0.8);
  Alcotest.(check bool) "low FPR" true (fp < 0.3)

let test_fingerprint_misses_tiny_load () =
  let rng = Rng.create 7 in
  let c = Gen.alu 4 in
  let tp, _ =
    Detect.fingerprint_detection rng ~chips:40 ~sigma:0.05 ~extra_load_ps:0.5
      ~threshold_sigmas:3.0 c ~tapped:[ 20 ]
  in
  Alcotest.(check bool) "stealthy trojan evades" true (tp < 0.5)

let test_iddq_detection () =
  let rng = Rng.create 8 in
  let clean = Gen.alu 4 in
  let troj = Insert.insert rng ~payload:Insert.Leak_parasitic ~trigger_width:3 ~patterns:2048 clean in
  let tp, fp =
    Detect.iddq_detection rng ~chips:30 ~patterns:10 ~threshold_sigmas:2.0 ~clean
      ~infected:troj.Insert.infected
  in
  Alcotest.(check bool) "trojan leakage detected" true (tp > 0.5);
  Alcotest.(check bool) "clean chips pass" true (fp < 0.3)

let test_ro_sensor () =
  let rng = Rng.create 9 in
  let shift = Detect.ro_sensor_shift rng ~stages:11 ~sigma:0.03 ~extra_load_ps:10.0 in
  Alcotest.(check bool) "visible shift" true (shift > 2.0);
  let small = Detect.ro_sensor_shift rng ~stages:11 ~sigma:0.03 ~extra_load_ps:0.1 in
  Alcotest.(check bool) "small load hides" true (small < 2.0)

let test_bisa () =
  let rng = Rng.create 10 in
  let golden = Trojan.Bisa.fill ~total_sites:500 ~design_cells:400 in
  Alcotest.(check int) "filler count" 100 golden.Trojan.Bisa.filler_cells;
  let rate = Trojan.Bisa.detection_rate rng ~golden ~max_trojan_cells:50 ~trials:100 in
  Alcotest.(check (float 1e-9)) "always detected" 1.0 rate;
  (match Trojan.Bisa.insert_trojan golden ~cells:200 with
   | None -> ()
   | Some _ -> Alcotest.fail "no room for 200 cells")

let prop_infected_equals_clean_when_dormant =
  QCheck.Test.make ~name:"dormant trojan is functionally invisible" ~count:10
    QCheck.(pair (int_bound 100) (int_bound 1023))
    (fun (seed, m) ->
      let rng = Rng.create seed in
      let clean = Gen.alu 4 in
      let troj = Insert.insert rng ~trigger_width:3 ~patterns:2048 clean in
      let ni = Circuit.num_inputs clean in
      let inputs = Array.init ni (fun k -> (m lsr k) land 1 = 1) in
      let values = Netlist.Sim.eval_all troj.Insert.infected inputs in
      let triggered = values.(troj.Insert.trigger_node) in
      triggered || not (Insert.exposed_by clean troj inputs))

let () =
  Alcotest.run "trojan"
    [ ("insert",
       [ Alcotest.test_case "interface preserved" `Quick test_insertion_preserves_interface;
         Alcotest.test_case "dormant" `Quick test_trojan_dormant_almost_always;
         Alcotest.test_case "payload fires" `Quick test_trojan_changes_function_when_triggered;
         Alcotest.test_case "parasitic silent" `Quick test_parasitic_payload_keeps_function;
         Alcotest.test_case "rare conditions" `Quick test_rare_conditions_are_rare ]);
      ("detect",
       [ Alcotest.test_case "mero n-detect" `Slow test_mero_n_detect_improves_exposure;
         Alcotest.test_case "fingerprint separates" `Quick test_fingerprint_separates;
         Alcotest.test_case "fingerprint stealth limit" `Quick test_fingerprint_misses_tiny_load;
         Alcotest.test_case "iddq" `Quick test_iddq_detection;
         Alcotest.test_case "ro sensor" `Quick test_ro_sensor;
         Alcotest.test_case "bisa" `Quick test_bisa ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_infected_equals_clean_when_dormant ]) ]
