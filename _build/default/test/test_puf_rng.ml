(* Tests for the PUF models, their metrics, the modelling attack, and the
   TRNG health-test battery. *)

module Rng = Eda_util.Rng
module Arbiter = Puf.Arbiter
module Ro = Puf.Ro_puf
module Trng = Rng_gen.Trng
module Health = Rng_gen.Health

let test_arbiter_deterministic_without_noise () =
  let rng = Rng.create 1 in
  let puf = Arbiter.manufacture rng ~noise_sigma:0.0 ~stages:32 () in
  let ch = Arbiter.random_challenge rng puf in
  let r1 = Arbiter.response rng puf ch in
  for _ = 1 to 20 do
    Alcotest.(check bool) "stable" r1 (Arbiter.response rng puf ch)
  done

let test_arbiter_uniformity () =
  let rng = Rng.create 2 in
  let puf = Arbiter.manufacture rng ~stages:64 () in
  let u = Arbiter.uniformity rng puf ~challenges:4000 in
  Alcotest.(check bool) "near 0.5" true (Float.abs (u -. 0.5) < 0.1)

let test_arbiter_reliability_degrades_with_noise () =
  let rng = Rng.create 3 in
  let quiet = Arbiter.manufacture rng ~noise_sigma:0.01 ~stages:64 () in
  let noisy = Arbiter.manufacture rng ~noise_sigma:1.5 ~stages:64 () in
  let r_quiet = Arbiter.reliability rng quiet ~challenges:150 ~remeasurements:7 in
  let r_noisy = Arbiter.reliability rng noisy ~challenges:150 ~remeasurements:7 in
  Alcotest.(check bool) "quiet reliable" true (r_quiet > 0.98);
  Alcotest.(check bool) "noise hurts" true (r_noisy < r_quiet)

let test_arbiter_uniqueness () =
  let rng = Rng.create 4 in
  let u = Arbiter.uniqueness rng ~chips:10 ~stages:64 ~challenges:200 in
  Alcotest.(check bool) "near 0.5" true (u > 0.35 && u < 0.65)

let test_variation_improves_reliability () =
  (* The [30]-style layout enhancement: larger per-stage variation makes
     the delay margin dominate noise. *)
  let rng = Rng.create 5 in
  let weak = Arbiter.manufacture rng ~variation:0.2 ~noise_sigma:0.3 ~stages:64 () in
  let strong = Arbiter.manufacture rng ~variation:3.0 ~noise_sigma:0.3 ~stages:64 () in
  let r_weak = Arbiter.reliability rng weak ~challenges:200 ~remeasurements:7 in
  let r_strong = Arbiter.reliability rng strong ~challenges:200 ~remeasurements:7 in
  Alcotest.(check bool) "variation helps" true (r_strong > r_weak)

let test_modeling_attack_learns () =
  let rng = Rng.create 6 in
  let puf = Arbiter.manufacture rng ~noise_sigma:0.02 ~stages:32 () in
  let acc =
    Arbiter.modeling_attack rng puf ~training:2000 ~test:500 ~epochs:30 ~learning_rate:0.05
  in
  Alcotest.(check bool) "ML attack breaks arbiter PUF" true (acc > 0.9)

let test_modeling_attack_needs_data () =
  let rng = Rng.create 7 in
  let puf = Arbiter.manufacture rng ~noise_sigma:0.02 ~stages:64 () in
  let starved =
    Arbiter.modeling_attack rng puf ~training:10 ~test:500 ~epochs:30 ~learning_rate:0.05
  in
  let fed =
    Arbiter.modeling_attack rng puf ~training:3000 ~test:500 ~epochs:30 ~learning_rate:0.05
  in
  Alcotest.(check bool) "more CRPs, better model" true (fed > starved)

let test_ro_puf_metrics () =
  let rng = Rng.create 8 in
  let puf = Ro.manufacture rng ~oscillators:64 () in
  let rel = Ro.reliability rng puf ~remeasurements:11 in
  Alcotest.(check bool) "reliable" true (rel > 0.9);
  let u = Ro.uniqueness rng ~chips:10 ~oscillators:64 in
  Alcotest.(check bool) "unique" true (u > 0.35 && u < 0.65)

let test_trng_unbiased_passes () =
  let rng = Rng.create 9 in
  let src = Trng.create rng in
  let bits = Trng.bits src 4096 in
  Alcotest.(check bool) "healthy source passes" true (Health.all_pass bits)

let test_trng_biased_fails_monobit () =
  let rng = Rng.create 10 in
  let src = Trng.create ~bias:0.7 rng in
  let bits = Trng.bits src 4096 in
  let v = Health.monobit bits in
  Alcotest.(check bool) "monobit fails" false v.Health.pass

let test_trng_correlated_fails_runs () =
  let rng = Rng.create 11 in
  let src = Trng.create ~correlation:0.8 rng in
  let bits = Trng.bits src 4096 in
  let v = Health.runs bits in
  Alcotest.(check bool) "runs fails" false v.Health.pass

let test_trng_stuck_fails_everything () =
  let src = Trng.stuck true in
  let bits = Trng.bits src 1024 in
  Alcotest.(check bool) "stuck source rejected" false (Health.all_pass bits)

let test_online_monitor () =
  let rng = Rng.create 12 in
  let healthy = Trng.create rng in
  let alarms_ok = Health.online_monitor healthy ~window:1024 ~windows:20 in
  Alcotest.(check bool) "few false alarms" true (alarms_ok <= 2);
  let broken = Trng.create ~bias:0.8 (Rng.create 13) in
  let alarms_bad = Health.online_monitor broken ~window:1024 ~windows:20 in
  Alcotest.(check bool) "bias alarms" true (alarms_bad >= 18)

let test_poker_uniformish () =
  let rng = Rng.create 14 in
  let src = Trng.create rng in
  let v = Health.poker (Trng.bits src 4096) in
  Alcotest.(check bool) "poker passes healthy" true v.Health.pass

let prop_encode_features_pm_one =
  QCheck.Test.make ~name:"arbiter features are +-1 parities" ~count:50
    QCheck.(array_of_size (QCheck.Gen.return 16) bool)
    (fun challenge ->
      let phi = Arbiter.features challenge in
      Array.for_all (fun x -> x = 1.0 || x = -1.0) phi
      && phi.(15) = (if challenge.(15) then -1.0 else 1.0))

let () =
  Alcotest.run "puf_rng"
    [ ("arbiter",
       [ Alcotest.test_case "deterministic" `Quick test_arbiter_deterministic_without_noise;
         Alcotest.test_case "uniformity" `Quick test_arbiter_uniformity;
         Alcotest.test_case "noise vs reliability" `Quick test_arbiter_reliability_degrades_with_noise;
         Alcotest.test_case "uniqueness" `Quick test_arbiter_uniqueness;
         Alcotest.test_case "variation enhancement" `Quick test_variation_improves_reliability ]);
      ("modeling_attack",
       [ Alcotest.test_case "learns the puf" `Quick test_modeling_attack_learns;
         Alcotest.test_case "needs data" `Quick test_modeling_attack_needs_data ]);
      ("ro_puf", [ Alcotest.test_case "metrics" `Quick test_ro_puf_metrics ]);
      ("trng",
       [ Alcotest.test_case "healthy passes" `Quick test_trng_unbiased_passes;
         Alcotest.test_case "bias detected" `Quick test_trng_biased_fails_monobit;
         Alcotest.test_case "correlation detected" `Quick test_trng_correlated_fails_runs;
         Alcotest.test_case "stuck detected" `Quick test_trng_stuck_fails_everything;
         Alcotest.test_case "online monitor" `Quick test_online_monitor;
         Alcotest.test_case "poker" `Quick test_poker_uniformish ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_encode_features_pm_one ]) ]
