(* Tests for fault models, injection campaigns, countermeasures, DFA and
   the natural-vs-malicious discriminator. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Model = Fault.Model
module Cm = Fault.Countermeasure
module Rng = Eda_util.Rng

let test_stuck_at_changes_output () =
  let c = Gen.c17 () in
  (* Force output node G22 stuck at 1; with all inputs 0, G22 would be 0. *)
  match Circuit.find_by_name c "G22" with
  | None -> Alcotest.fail "missing G22"
  | Some g22 ->
    let fault = Model.Stuck_at { node = g22; value = true } in
    let inputs = Array.make 5 false in
    Alcotest.(check bool) "clean is 0" false (Netlist.Sim.eval c inputs).(0);
    Alcotest.(check bool) "faulty is 1" true (Model.eval_faulty c ~faults:[ fault ] inputs).(0);
    Alcotest.(check bool) "detected" true (Model.detects c ~fault inputs)

let test_bit_flip_inverts () =
  let c = Gen.parity_tree 4 in
  let out = (Circuit.output_ids c).(0) in
  let fault = Model.Bit_flip { node = out } in
  for m = 0 to 15 do
    let inputs = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
    let clean = (Netlist.Sim.eval c inputs).(0) in
    let faulty = (Model.eval_faulty c ~faults:[ fault ] inputs).(0) in
    Alcotest.(check bool) (Printf.sprintf "m=%d inverted" m) (not clean) faulty
  done

let test_fault_propagates_through_cone () =
  (* A stuck input of an AND gate matters only when the other input is 1. *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let y = Circuit.add_gate c Gate.And [ a; b ] in
  Circuit.set_output c "y" y;
  let fault = Model.Stuck_at { node = a; value = true } in
  Alcotest.(check bool) "masked by b=0" false (Model.detects c ~fault [| false; false |]);
  Alcotest.(check bool) "visible with b=1" true (Model.detects c ~fault [| false; true |])

let test_fault_list_size () =
  let c = Gen.c17 () in
  (* 5 inputs + 6 gates = 11 sites, 2 polarities. *)
  Alcotest.(check int) "fault list" 22 (List.length (Model.all_stuck_at_faults c))

let test_coverage_exhaustive_patterns () =
  let c = Gen.c17 () in
  let faults = Model.all_stuck_at_faults c in
  let patterns = List.init 32 (fun m -> Array.init 5 (fun i -> (m lsr i) land 1 = 1)) in
  (* c17 has no redundant logic: exhaustive patterns detect every fault. *)
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 (Model.coverage c ~faults ~patterns)

let test_duplication_detects_single_gate_faults () =
  let rng = Rng.create 1 in
  let prot = Cm.duplicate_protect (Gen.ripple_adder 2) in
  (* Faults on gates (not inputs) must never corrupt silently. *)
  let gate_faults =
    List.filter
      (fun f ->
        match Circuit.kind prot.Cm.circuit (Model.node_of f) with
        | Gate.Input -> false
        | _ -> true)
      (Model.all_stuck_at_faults prot.Cm.circuit)
  in
  let _, escaped, _ = Cm.validate rng prot ~faults:gate_faults ~patterns:32 in
  Alcotest.(check int) "no escapes on internal faults" 0 escaped

let test_duplication_input_blind_spot () =
  (* Common-mode input faults hit both copies: they escape by design. *)
  let rng = Rng.create 2 in
  let prot = Cm.duplicate_protect (Gen.ripple_adder 2) in
  let input_faults =
    List.filter
      (fun f -> Circuit.kind prot.Cm.circuit (Model.node_of f) = Gate.Input)
      (Model.all_stuck_at_faults prot.Cm.circuit)
  in
  let _, escaped, _ = Cm.validate rng prot ~faults:input_faults ~patterns:32 in
  Alcotest.(check bool) "input faults escape" true (escaped > 0)

let test_parity_misses_even_flips () =
  (* Two simultaneous output flips preserve parity: the validation
     campaign must find such escapes (the paper's red-team point). *)
  let rng = Rng.create 3 in
  let prot = Cm.parity_protect (Gen.ripple_adder 2) in
  let c = prot.Cm.circuit in
  (* Double fault on two data outputs. *)
  let o0 = (Circuit.output_ids c).(0) and o1 = (Circuit.output_ids c).(1) in
  let faults = [ Model.Bit_flip { node = o0 }; Model.Bit_flip { node = o1 } ] in
  let inputs = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
  let golden = Netlist.Sim.eval c inputs in
  let faulty = Model.eval_faulty c ~faults inputs in
  let outs = Circuit.outputs c in
  let alarm_idx =
    let rec find k = if fst outs.(k) = "alarm" then k else find (k + 1) in
    find 0
  in
  Alcotest.(check bool) "data corrupted" true (faulty.(0) <> golden.(0));
  Alcotest.(check bool) "alarm silent (even parity)" golden.(alarm_idx) faulty.(alarm_idx)

let test_parity_catches_single_flips () =
  let rng = Rng.create 4 in
  let prot = Cm.parity_protect (Gen.ripple_adder 2) in
  let c = prot.Cm.circuit in
  let o0 = (Circuit.output_ids c).(0) in
  let fault = Model.Bit_flip { node = o0 } in
  let inputs = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
  Alcotest.(check bool) "classified detected" true
    (Cm.classify prot ~fault inputs = Cm.Detected)

let test_infective_scrambles () =
  let rng = Rng.create 5 in
  let prot = Cm.infective_protect (Gen.parity_tree 3) in
  let c = prot.Cm.circuit in
  (* Find a fault that trips the alarm, then check the infected output
     differs from the merely-faulty value. *)
  let inputs = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
  ignore inputs;
  Alcotest.(check bool) "alarm output exists" true
    (Circuit.find_by_name c "alarm" <> None);
  Alcotest.(check bool) "infected outputs registered" true
    (List.for_all
       (fun nm -> Array.exists (fun (onm, _) -> onm = nm) (Circuit.outputs c))
       prot.Cm.data_outputs)

let test_dfa_recovers_last_round_key () =
  let rng = Rng.create 6 in
  let key = Crypto.Aes.random_key rng in
  let ks = Crypto.Aes.expand_key key in
  let bytes, _ = Fault.Dfa.recover_last_round_key rng ks ~max_pairs_per_byte:40 in
  Array.iteri
    (fun pos b -> Alcotest.(check (option int)) (Printf.sprintf "byte %d" pos) (Some ks.(10).(pos)) b)
    bytes

let test_dfa_candidates_contain_truth () =
  let rng = Rng.create 7 in
  let key = Crypto.Aes.random_key rng in
  let ks = Crypto.Aes.expand_key key in
  for ct_pos = 0 to 3 do
    let byte = Fault.Dfa.preimage_of_ct_pos ct_pos in
    let pt = Array.init 16 (fun _ -> Rng.int rng 256) in
    let correct, faulty = Fault.Dfa.faulty_encrypt rng ks pt ~byte in
    let cands = Fault.Dfa.candidates ~ct_pos ~correct ~faulty in
    Alcotest.(check bool) "true key among candidates" true (List.mem ks.(10).(ct_pos) cands)
  done

let test_dfa_infective_defends () =
  let rng = Rng.create 8 in
  let key = Crypto.Aes.random_key rng in
  let ks = Crypto.Aes.expand_key key in
  let recovered, _ = Fault.Dfa.recover_with_infection rng ks ~ct_pos:0 ~max_pairs:40 in
  (* Either nothing survives or the surviving candidate is wrong. *)
  Alcotest.(check bool) "key not recovered" true (recovered <> Some ks.(10).(0))

let test_discrimination () =
  let rng = Rng.create 9 in
  let nat, att = Fault.Discriminate.accuracy rng Fault.Discriminate.default_config ~trials:150 in
  Alcotest.(check bool) "natural accuracy" true (nat > 0.9);
  Alcotest.(check bool) "attack accuracy" true (att > 0.9)

let test_discrimination_classifies_streams () =
  let rng = Rng.create 10 in
  let cfg = Fault.Discriminate.default_config in
  let att = Fault.Discriminate.attack_stream rng ~cycles:100_000 ~sites:64 ~events:10 ~burst:200 in
  Alcotest.(check bool) "attack flagged" true
    (Fault.Discriminate.classify cfg att = Fault.Discriminate.Malicious);
  Alcotest.(check bool) "empty stream natural" true
    (Fault.Discriminate.classify cfg [] = Fault.Discriminate.Natural)

let prop_faulty_eval_differs_only_downstream =
  QCheck.Test.make ~name:"fault cannot change values outside its cone" ~count:20
    QCheck.(pair (int_bound 300) (int_bound 63))
    (fun (seed, m) ->
      let c = Gen.random_dag ~seed ~inputs:6 ~gates:25 ~outputs:2 in
      let inputs = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
      let node = 6 + (seed mod 25) in
      let fault = Model.Stuck_at { node; value = true } in
      let clean = Netlist.Sim.eval_all c inputs in
      let faulty = Model.eval_all_faulty c ~faults:[ fault ] inputs in
      (* Nodes before the fault site in topological order are untouched. *)
      let ok = ref true in
      for i = 0 to node - 1 do
        if clean.(i) <> faulty.(i) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "fault"
    [ ("model",
       [ Alcotest.test_case "stuck-at changes output" `Quick test_stuck_at_changes_output;
         Alcotest.test_case "bit flip inverts" `Quick test_bit_flip_inverts;
         Alcotest.test_case "propagation masking" `Quick test_fault_propagates_through_cone;
         Alcotest.test_case "fault list size" `Quick test_fault_list_size;
         Alcotest.test_case "exhaustive coverage" `Quick test_coverage_exhaustive_patterns ]);
      ("countermeasures",
       [ Alcotest.test_case "duplication detects internal" `Quick test_duplication_detects_single_gate_faults;
         Alcotest.test_case "duplication input blind spot" `Quick test_duplication_input_blind_spot;
         Alcotest.test_case "parity misses even flips" `Quick test_parity_misses_even_flips;
         Alcotest.test_case "parity catches single flips" `Quick test_parity_catches_single_flips;
         Alcotest.test_case "infective structure" `Quick test_infective_scrambles ]);
      ("dfa",
       [ Alcotest.test_case "recovers key" `Quick test_dfa_recovers_last_round_key;
         Alcotest.test_case "candidates contain truth" `Quick test_dfa_candidates_contain_truth;
         Alcotest.test_case "infective defends" `Quick test_dfa_infective_defends ]);
      ("discrimination",
       [ Alcotest.test_case "accuracy" `Quick test_discrimination;
         Alcotest.test_case "stream classification" `Quick test_discrimination_classifies_streams ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_faulty_eval_differs_only_downstream ]) ]
