test/test_core.ml: Alcotest Eda_util Float Format List Locking Netlist Secure_eda Sidechannel String
