test/test_extensions2.ml: Alcotest Array Camo Crypto Dft Eda_util Fault Hashtbl Int64 List Locking Logic Netlist Power Printf Sat Sidechannel Synth Timing
