test/test_crypto.ml: Alcotest Array Crypto Eda_util Int64 List Netlist Printf QCheck QCheck_alcotest
