test/test_util.ml: Alcotest Array Eda_util Float Gen List QCheck QCheck_alcotest
