test/test_cross_engine.ml: Alcotest Array Eda_util Float Hashtbl Iflow List Logic Netlist Printf QCheck QCheck_alcotest Sat Synth Timing
