test/test_locking.ml: Alcotest Array Camo Eda_util List Locking Netlist QCheck QCheck_alcotest Sat
