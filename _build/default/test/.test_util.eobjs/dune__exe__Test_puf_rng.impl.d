test/test_puf_rng.ml: Alcotest Array Eda_util Float List Puf QCheck QCheck_alcotest Rng_gen
