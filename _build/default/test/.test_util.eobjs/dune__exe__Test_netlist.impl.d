test/test_netlist.ml: Alcotest Array Eda_util Float List Logic Netlist Printf QCheck QCheck_alcotest
