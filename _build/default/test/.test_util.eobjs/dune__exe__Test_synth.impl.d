test/test_synth.ml: Alcotest Array Eda_util List Netlist Option Printf QCheck QCheck_alcotest Sidechannel Synth Timing
