test/test_physical_split.ml: Alcotest Array Eda_util Float Hashtbl List Netlist Physical Printf QCheck QCheck_alcotest Splitmfg
