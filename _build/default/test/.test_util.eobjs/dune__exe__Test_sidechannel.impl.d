test/test_sidechannel.ml: Alcotest Array Crypto Eda_util Float List Netlist Printf QCheck QCheck_alcotest Sidechannel
