test/test_extensions.ml: Alcotest Array Crypto Eda_util Hashtbl List Locking Netlist Physical Printf Sat Secure_eda Sidechannel Synth Timing
