test/test_dft.mli:
