test/test_timing_power.ml: Alcotest Array Eda_util Float List Netlist Power Printf QCheck QCheck_alcotest Timing Trojan
