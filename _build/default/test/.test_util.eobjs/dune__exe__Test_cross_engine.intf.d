test/test_cross_engine.mli:
