test/test_sat.ml: Alcotest Array Eda_util List Netlist Printf QCheck QCheck_alcotest Sat
