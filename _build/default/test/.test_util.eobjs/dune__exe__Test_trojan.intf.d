test/test_trojan.mli:
