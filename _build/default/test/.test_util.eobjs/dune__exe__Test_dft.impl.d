test/test_dft.ml: Alcotest Array Crypto Dft Eda_util Fault List Netlist Printf QCheck QCheck_alcotest
