test/test_iflow_hls.ml: Alcotest Array Crypto Eda_util Float Hashtbl Hls Iflow List Netlist Printf QCheck QCheck_alcotest
