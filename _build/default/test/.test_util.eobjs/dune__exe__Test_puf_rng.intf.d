test/test_puf_rng.mli:
