test/test_logic.ml: Alcotest Float Format List Logic Printf QCheck QCheck_alcotest
