test/test_fault.ml: Alcotest Array Crypto Eda_util Fault List Netlist Printf QCheck QCheck_alcotest
