test/test_physical_split.mli:
