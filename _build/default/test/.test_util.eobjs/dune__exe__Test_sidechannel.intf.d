test/test_sidechannel.mli:
