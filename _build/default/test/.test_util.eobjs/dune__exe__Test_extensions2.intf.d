test/test_extensions2.mli:
