test/test_trojan.ml: Alcotest Array Eda_util List Netlist Printf QCheck QCheck_alcotest Trojan
