test/test_timing_power.mli:
