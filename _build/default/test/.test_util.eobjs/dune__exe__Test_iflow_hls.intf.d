test/test_iflow_hls.mli:
