(* Tests for static timing analysis, event-driven glitch simulation and the
   power models. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Sta = Timing.Sta
module Ev = Timing.Event_sim
module Rng = Eda_util.Rng

let test_sta_single_gate () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let y = Circuit.add_gate c Gate.And [ a; b ] in
  Circuit.set_output c "y" y;
  let r = Sta.analyze c in
  Alcotest.(check (float 1e-9)) "and delay" (Gate.delay Gate.And) r.Sta.critical_path_delay;
  Alcotest.(check string) "critical endpoint" "y" r.Sta.critical_output

let test_sta_chain_adds () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let n1 = Circuit.add_gate c Gate.Not [ a ] in
  let n2 = Circuit.add_gate c Gate.Not [ n1 ] in
  let n3 = Circuit.add_gate c Gate.Not [ n2 ] in
  Circuit.set_output c "y" n3;
  let r = Sta.analyze c in
  Alcotest.(check (float 1e-9)) "3 nots" (3.0 *. Gate.delay Gate.Not) r.Sta.critical_path_delay

let test_sta_takes_max_path () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let slow = Circuit.add_gate c Gate.Xor [ a; Circuit.add_gate c Gate.Xor [ a; a ] ] in
  let fast = Circuit.add_gate c Gate.Not [ a ] in
  let y = Circuit.add_gate c Gate.And [ slow; fast ] in
  Circuit.set_output c "y" y;
  let r = Sta.analyze c in
  Alcotest.(check (float 1e-9)) "max path"
    ((2.0 *. Gate.delay Gate.Xor) +. Gate.delay Gate.And)
    r.Sta.critical_path_delay

let test_depth () =
  Alcotest.(check int) "c17 depth" 3 (Sta.depth (Gen.c17 ()));
  Alcotest.(check int) "parity16 tree depth" 4 (Sta.depth (Gen.parity_tree 16))

let test_varied_delays_deterministic () =
  let c = Gen.c17 () in
  let d1 = Sta.varied_delays (Rng.create 5) ~sigma:0.05 c in
  let d2 = Sta.varied_delays (Rng.create 5) ~sigma:0.05 c in
  Alcotest.(check (float 1e-12)) "same seed same delays" (d1 6 Gate.Nand) (d2 6 Gate.Nand);
  let r1 = Sta.analyze ~delay_of:d1 c in
  let r0 = Sta.analyze c in
  Alcotest.(check bool) "variation changes delay" true
    (Float.abs (r1.Sta.critical_path_delay -. r0.Sta.critical_path_delay) > 1e-9)

let test_event_sim_final_values_match () =
  (* After all events settle, net values equal the static evaluation. *)
  let rng = Rng.create 31 in
  for seed = 0 to 10 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:3 in
    let prev = Array.init 6 (fun _ -> Rng.bool rng) in
    let next = Array.init 6 (fun _ -> Rng.bool rng) in
    let transitions = Ev.cycle c ~prev_inputs:prev ~next_inputs:next in
    let values = Netlist.Sim.eval_all c prev in
    List.iter (fun tr -> values.(tr.Ev.node) <- tr.Ev.value) transitions;
    Alcotest.(check bool) (Printf.sprintf "seed %d settles correctly" seed) true
      (values = Netlist.Sim.eval_all c next)
  done

let test_event_sim_no_events_when_stable () =
  let c = Gen.c17 () in
  let inputs = [| true; false; true; false; true |] in
  let transitions = Ev.cycle c ~prev_inputs:inputs ~next_inputs:inputs in
  Alcotest.(check int) "no transitions" 0 (List.length transitions)

let test_event_sim_produces_glitch () =
  (* y = a XOR a' where a' = NOT(NOT(a)): skew between the two paths makes
     the XOR glitch even though its final value is constant 0. *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let n1 = Circuit.add_gate c Gate.Not [ a ] in
  let n2 = Circuit.add_gate c Gate.Not [ n1 ] in
  let y = Circuit.add_gate c Gate.Xor [ a; n2 ] in
  Circuit.set_output c "y" y;
  let transitions = Ev.cycle c ~prev_inputs:[| false |] ~next_inputs:[| true |] in
  let glitchers = Ev.glitching_nodes c transitions in
  Alcotest.(check bool) "xor glitches" true (List.mem y glitchers);
  (* Final value of y is 0 both before and after. *)
  Alcotest.(check bool) "final y stable" false (Netlist.Sim.eval c [| true |]).(0)

let test_event_sim_times_respect_delay () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let y = Circuit.add_gate c Gate.And [ a; a ] in
  Circuit.set_output c "y" y;
  let transitions = Ev.cycle c ~prev_inputs:[| false |] ~next_inputs:[| true |] in
  (match transitions with
   | [ t_in; t_gate ] ->
     Alcotest.(check (float 1e-9)) "input at 0" 0.0 t_in.Ev.time;
     Alcotest.(check (float 1e-9)) "gate after delay" (Gate.delay Gate.And) t_gate.Ev.time
   | _ -> Alcotest.fail "expected exactly two transitions")

let test_power_trace_shape () =
  let rng = Rng.create 17 in
  let c = Gen.parity_tree 8 in
  let config = { Power.Model.time_bins = 10; bin_width_ps = 50.0; noise_sigma = 0.0 } in
  let tr =
    Power.Model.trace rng c ~config ~prev_inputs:(Array.make 8 false)
      ~next_inputs:(Array.make 8 true)
  in
  Alcotest.(check int) "bins" 10 (Array.length tr);
  Alcotest.(check bool) "energy deposited" true (Array.exists (fun e -> e > 0.0) tr);
  (* All 8 inputs toggle at t=0: bin 0 nonzero. *)
  Alcotest.(check bool) "no negative energy without noise" true
    (Array.for_all (fun e -> e >= 0.0) tr)

let test_power_noise_zero_is_deterministic () =
  let c = Gen.c17 () in
  let prev = Array.make 5 false and next = Array.make 5 true in
  let t1 =
    Power.Model.total_energy (Rng.create 1) c ~noise_sigma:0.0 ~prev_inputs:prev ~next_inputs:next
  in
  let t2 =
    Power.Model.total_energy (Rng.create 2) c ~noise_sigma:0.0 ~prev_inputs:prev ~next_inputs:next
  in
  Alcotest.(check (float 1e-9)) "deterministic" t1 t2;
  Alcotest.(check bool) "positive" true (t1 > 0.0)

let test_hd_sample_counts_switching () =
  let c = Gen.c17 () in
  let rng = Rng.create 3 in
  let inputs = Array.make 5 false in
  let same = Power.Model.hamming_distance_sample rng c ~noise_sigma:0.0 ~prev_inputs:inputs ~next_inputs:inputs in
  Alcotest.(check (float 1e-9)) "no switch no energy" 0.0 same;
  let diff =
    Power.Model.hamming_distance_sample rng c ~noise_sigma:0.0 ~prev_inputs:inputs
      ~next_inputs:(Array.make 5 true)
  in
  Alcotest.(check bool) "switching costs energy" true (diff > 0.0)

let test_hw_sample_monotone_in_ones () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let y = Circuit.add_gate c Gate.Or [ a; b ] in
  Circuit.set_output c "y" y;
  let rng = Rng.create 3 in
  let hw inputs = Power.Model.hamming_weight_sample rng c ~noise_sigma:0.0 ~inputs in
  Alcotest.(check bool) "more ones more power" true (hw [| true; true |] > hw [| false; false |])

let test_iddq_trojan_increases_current () =
  let rng = Rng.create 7 in
  let clean = Gen.alu 4 in
  let troj = Trojan.Insert.insert rng ~trigger_width:2 ~patterns:2048 clean in
  let inputs = Array.make (Circuit.num_inputs clean) false in
  let i_clean =
    Power.Model.iddq_sample rng clean ~inputs ~noise_sigma:0.0 ~temperature_factor:1.0
  in
  let i_troj =
    Power.Model.iddq_sample rng troj.Trojan.Insert.infected ~inputs ~noise_sigma:0.0
      ~temperature_factor:1.0
  in
  Alcotest.(check bool) "extra cells leak" true (i_troj > i_clean)

let prop_event_sim_settles_to_static =
  QCheck.Test.make ~name:"event sim settles to static values" ~count:20
    QCheck.(pair (int_bound 500) (pair (int_bound 63) (int_bound 63)))
    (fun (seed, (p, q)) ->
      let c = Gen.random_dag ~seed ~inputs:6 ~gates:30 ~outputs:2 in
      let prev = Array.init 6 (fun i -> (p lsr i) land 1 = 1) in
      let next = Array.init 6 (fun i -> (q lsr i) land 1 = 1) in
      let transitions = Ev.cycle c ~prev_inputs:prev ~next_inputs:next in
      let values = Netlist.Sim.eval_all c prev in
      List.iter (fun tr -> values.(tr.Ev.node) <- tr.Ev.value) transitions;
      values = Netlist.Sim.eval_all c next)

let () =
  Alcotest.run "timing_power"
    [ ("sta",
       [ Alcotest.test_case "single gate" `Quick test_sta_single_gate;
         Alcotest.test_case "chain" `Quick test_sta_chain_adds;
         Alcotest.test_case "max path" `Quick test_sta_takes_max_path;
         Alcotest.test_case "depth" `Quick test_depth;
         Alcotest.test_case "varied delays" `Quick test_varied_delays_deterministic ]);
      ("event_sim",
       [ Alcotest.test_case "settles to static" `Quick test_event_sim_final_values_match;
         Alcotest.test_case "stable input no events" `Quick test_event_sim_no_events_when_stable;
         Alcotest.test_case "produces glitches" `Quick test_event_sim_produces_glitch;
         Alcotest.test_case "respects delays" `Quick test_event_sim_times_respect_delay ]);
      ("power",
       [ Alcotest.test_case "trace shape" `Quick test_power_trace_shape;
         Alcotest.test_case "deterministic without noise" `Quick test_power_noise_zero_is_deterministic;
         Alcotest.test_case "hd sample" `Quick test_hd_sample_counts_switching;
         Alcotest.test_case "hw sample" `Quick test_hw_sample_monotone_in_ones;
         Alcotest.test_case "iddq trojan" `Quick test_iddq_trojan_increases_current ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_event_sim_settles_to_static ]) ]
