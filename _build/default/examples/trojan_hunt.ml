(* Trojan hunt: play both sides of the fab. An adversary inserts a
   rare-trigger Trojan into an ALU; the defender runs the Table II
   detection arsenal — MERO test generation, path-delay fingerprinting and
   IDDQ analysis — and we score each technique.

   dune exec examples/trojan_hunt.exe *)

let () =
  let rng = Eda_util.Rng.create 2718 in
  (* A 6-bit ALU: 14 inputs, so a 4-condition trigger can be genuinely
     rare and random testing genuinely hopeless. *)
  let clean = Netlist.Generators.alu 6 in

  (* --- red team ------------------------------------------------------ *)
  print_endline "[red team] inserting a 4-condition rare-trigger Trojan...";
  let troj = Trojan.Insert.insert rng ~trigger_width:4 ~patterns:8192 clean in
  let p_trigger = Trojan.Insert.trigger_probability rng troj ~patterns:100_000 in
  Printf.printf "  trigger fires with p = %.5f under random stimuli\n" p_trigger;
  Printf.printf "  payload: flip primary output %d when triggered\n" troj.Trojan.Insert.victim_output;
  let extra =
    (Netlist.Circuit.stats troj.Trojan.Insert.infected).Netlist.Circuit.gates
    - (Netlist.Circuit.stats clean).Netlist.Circuit.gates
  in
  Printf.printf "  footprint: %+d gates\n" extra;

  (* --- blue team: functional testing --------------------------------- *)
  print_endline "\n[blue team] 1. plain random functional test (1000 patterns):";
  let ni = Netlist.Circuit.num_inputs clean in
  let random_pats = List.init 1000 (fun _ -> Array.init ni (fun _ -> Eda_util.Rng.bool rng)) in
  let exposed_random = List.exists (fun p -> Trojan.Insert.exposed_by clean troj p) random_pats in
  Printf.printf "  exposed: %b%s\n" exposed_random
    (if exposed_random then "" else " (random testing misses the rare trigger)");

  print_endline "[blue team] 2. MERO statistical N-detect test generation:";
  let rare = Trojan.Insert.rare_conditions rng ~patterns:8192 ~count:12 clean in
  List.iter
    (fun n_detect ->
      let pats = Trojan.Detect.mero_patterns rng ~n_detect ~rare ~max_patterns:8000 clean in
      Printf.printf "  N = %-3d -> %4d patterns, Trojan exposed: %b\n" n_detect
        (List.length pats)
        (Trojan.Detect.functional_detect clean troj pats))
    [ 4; 16; 64 ];

  (* --- blue team: side-channel testing ------------------------------- *)
  print_endline "[blue team] 3. path-delay fingerprinting (40 golden chips, 3% process sigma):";
  let tapped = List.map fst troj.Trojan.Insert.trigger_nets in
  let tp, fp =
    Trojan.Detect.fingerprint_detection rng ~chips:40 ~sigma:0.03 ~extra_load_ps:25.0
      ~threshold_sigmas:3.0 clean ~tapped
  in
  Printf.printf "  true-positive %.0f%%, false-positive %.0f%%\n" (100.0 *. tp) (100.0 *. fp);

  print_endline "[blue team] 4. IDDQ quiescent-current analysis:";
  let tp, fp =
    Trojan.Detect.iddq_detection rng ~chips:30 ~patterns:12 ~threshold_sigmas:2.0 ~clean
      ~infected:troj.Trojan.Insert.infected
  in
  Printf.printf "  true-positive %.0f%%, false-positive %.0f%%\n" (100.0 *. tp) (100.0 *. fp);

  (* --- prevention beats detection ------------------------------------ *)
  print_endline "\n[design time] BISA self-authenticating fill (prevention, Table II row 1):";
  let golden = Trojan.Bisa.fill ~total_sites:1200 ~design_cells:1000 in
  let rate = Trojan.Bisa.detection_rate rng ~golden ~max_trojan_cells:30 ~trials:500 in
  Printf.printf "  any fab-time insertion displaces filler cells: detection rate %.0f%%\n"
    (100.0 *. rate);

  print_endline "\nverdict: single techniques have blind spots; the paper's point is that";
  print_endline "EDA must orchestrate them (test patterns + side channels + prevention)."
