(* Quickstart: build a circuit, lock it, verify the lock, break it.

   dune exec examples/quickstart.exe *)

let () =
  let rng = Eda_util.Rng.create 1 in

  (* 1. A design worth protecting: a 4-bit ALU. *)
  let alu = Netlist.Generators.alu 4 in
  let stats = Netlist.Circuit.stats alu in
  Printf.printf "design: 4-bit ALU — %d gates, area %.1f\n" stats.Netlist.Circuit.gates
    stats.Netlist.Circuit.area;

  (* 2. Lock it with 16 EPIC-style key gates before sending it to the
        (untrusted) foundry. *)
  let locked = Locking.Lock.epic rng ~key_bits:16 alu in
  Printf.printf "locked with %d key bits\n" (Array.length locked.Locking.Lock.correct_key);

  (* 3. Sign-off: the correct key restores the original function — checked
        by SAT equivalence, not simulation sampling. *)
  (match Locking.Lock.verify_correct locked ~original:alu with
   | None -> print_endline "sign-off: locked design == original under the correct key"
   | Some witness ->
     Printf.printf "sign-off FAILED at input %s\n"
       (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list witness))));

  (* 4. A wrong key corrupts the function. *)
  let wrong_key = Array.map not locked.Locking.Lock.correct_key in
  let corruption =
    Locking.Lock.corruption rng locked ~original:alu ~wrong_key ~patterns:1000
  in
  Printf.printf "wrong key corrupts %.0f%% of random patterns\n" (100.0 *. corruption);

  (* 5. Now play the attacker: locked netlist + working chip (oracle). *)
  let oracle = Locking.Sat_attack.oracle_of_circuit alu in
  let result = Locking.Sat_attack.run ~oracle locked in
  Printf.printf "SAT attack: %d distinguishing inputs, key %s\n"
    result.Locking.Sat_attack.iterations
    (if Locking.Sat_attack.recovered_key_correct locked ~original:alu result then
       "RECOVERED (EPIC locking is SAT-attackable — use SFLL-HD, cf. bench curves)"
     else "not recovered");

  (* 6. The netlist can be saved and reloaded in the .bench-style format. *)
  let text = Netlist.Io.to_string alu in
  let reloaded = Netlist.Io.of_string text in
  Printf.printf "netlist IO roundtrip equivalent: %b (%d bytes)\n"
    (Netlist.Sim.equivalent_exhaustive alu reloaded)
    (String.length text)
