(* The paper's Fig. 2, as a user would reproduce it: mask a gate with ISW
   private circuits, synthesize it two ways, and watch the classical flow
   destroy the side-channel guarantee while preserving functionality.

   dune exec examples/private_circuit.exe *)

module L = Sidechannel.Leakage
module Tvla = Sidechannel.Tvla

let () =
  let rng = Eda_util.Rng.create 42 in

  (* 1. The sensitive operation: c = a AND b (a, b secret). *)
  print_endline "masking c = a AND b with 3-share ISW private circuits...";
  let masked = Sidechannel.Isw.transform ~shares:3 (L.private_and_source ()) in
  Printf.printf "  shares per secret: %d, fresh random bits: %d, gates: %d\n"
    masked.Sidechannel.Isw.shares
    (Array.length masked.Sidechannel.Isw.random_inputs)
    (Netlist.Circuit.stats masked.Sidechannel.Isw.circuit).Netlist.Circuit.gates;

  (* 2. Synthesize twice. *)
  let aware = L.synthesize_masked L.Security_aware in
  let unaware = L.synthesize_masked L.Security_unaware in
  print_endline "synthesized with (a) order barriers honoured, (b) classical XOR re-association";

  (* 3. Both are functionally perfect... *)
  let check masked =
    List.for_all
      (fun (a, b) ->
        Sidechannel.Isw.eval rng masked ~values:[ ("a", a); ("b", b) ] = [ ("y", a && b) ])
      [ (false, false); (false, true); (true, false); (true, true) ]
  in
  Printf.printf "functional check: aware %b, unaware %b\n" (check aware) (check unaware);

  (* 4. ... but only one is secure. Fixed-vs-random TVLA: *)
  let assess name masked =
    let r = L.tvla_campaign rng masked ~traces_per_class:5000 ~noise_sigma:0.3 in
    Printf.printf "  %-22s max|t| = %6.2f  -> %s\n" name r.Tvla.max_abs_t
      (if Tvla.leaks r then "LEAKS (fails TVLA)" else "passes TVLA");
    r
  in
  print_endline "TVLA leakage assessment (5000 traces per class, |t| threshold 4.5):";
  let _ = assess "security-aware" aware in
  let ru = assess "security-unaware" unaware in

  (* 5. Where is the leak? The factored wire of Fig. 2. *)
  let wire, t = L.leakiest_wire rng unaware ~samples:5000 in
  Printf.printf "the synthesized wire %s carries a3*(b1^b2^b3)-class values: |t| = %.1f\n" wire t;

  (* 6. How many traces would an attacker need? *)
  let n =
    Sidechannel.Metrics.traces_to_threshold ~observed_t:ru.Tvla.max_abs_t ~observed_n:5000
  in
  Printf.printf "extrapolated traces to TVLA threshold for the unaware netlist: ~%.0f\n" n;

  print_endline "\nmoral (the paper's): logic synthesis must compile security constraints,";
  print_endline "not just functions — otherwise a legal optimization is an attack."
