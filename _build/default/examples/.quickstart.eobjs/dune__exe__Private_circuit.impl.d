examples/private_circuit.ml: Array Eda_util List Netlist Printf Sidechannel
