examples/private_circuit.mli:
