examples/quickstart.mli:
