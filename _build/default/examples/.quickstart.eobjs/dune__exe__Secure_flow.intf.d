examples/secure_flow.mli:
