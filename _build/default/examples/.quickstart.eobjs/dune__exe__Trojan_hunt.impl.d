examples/trojan_hunt.ml: Array Eda_util List Netlist Printf Trojan
