examples/quickstart.ml: Array Eda_util List Locking Netlist Printf String
