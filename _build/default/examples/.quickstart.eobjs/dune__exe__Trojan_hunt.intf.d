examples/trojan_hunt.mli:
