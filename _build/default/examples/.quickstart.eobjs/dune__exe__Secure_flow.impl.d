examples/secure_flow.ml: Array Crypto Dft Eda_util List Locking Netlist Printf Puf Rng_gen Secure_eda Sidechannel
