examples/supply_chain.ml: Array Eda_util Float List Locking Netlist Physical Printf Puf Splitmfg Synth
