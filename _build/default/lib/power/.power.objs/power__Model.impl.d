lib/power/model.ml: Array Eda_util Float List Netlist Timing
