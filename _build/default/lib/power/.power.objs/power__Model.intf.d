lib/power/model.mli: Eda_util Netlist
