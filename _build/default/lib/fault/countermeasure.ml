(** Fault-attack countermeasures as netlist transforms (Table II: error-
    detecting architectures [10], infective countermeasures [18]), plus
    detection-coverage validation (the functional-validation row: "does the
    error-detecting scheme detect all faults? search for the ones it
    misses"). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type protected_circuit = {
  circuit : Circuit.t;
  data_outputs : string list;  (* original outputs *)
  alarm_output : string;  (* raised when an error is detected *)
}

(** Parity prediction: one extra output carries the XOR of all data
    outputs computed through an independent parity tree over a duplicated
    cone; the alarm compares predicted vs actual parity. Detects any fault
    that flips an odd number of outputs. *)
let parity_protect source =
  let c = Circuit.copy source in
  let outs = Circuit.outputs c in
  (* Duplicate the whole combinational cone to predict parity
     independently: faults in the functional cone then disagree with the
     prediction. *)
  let duplicate = Circuit.copy source in
  let bindings = Circuit.inputs c in
  let dup_outs = Circuit.inline ~into:c ~sub:duplicate ~prefix:"pred_" bindings in
  let actual_parity =
    Circuit.reduce c Gate.Xor (Array.to_list (Array.map snd outs))
  in
  let predicted_parity = Circuit.reduce c Gate.Xor (Array.to_list dup_outs) in
  let alarm = Circuit.add_gate ~name:"alarm" c Gate.Xor [ actual_parity; predicted_parity ] in
  Circuit.set_output c "alarm" alarm;
  { circuit = c;
    data_outputs = Array.to_list (Array.map fst outs);
    alarm_output = "alarm" }

(** Duplication with comparison: the full cone is duplicated and every
    output pair compared; the alarm is the OR of the miscompares. Detects
    any fault confined to one copy. *)
let duplicate_protect source =
  let c = Circuit.copy source in
  let outs = Circuit.outputs c in
  let duplicate = Circuit.copy source in
  let bindings = Circuit.inputs c in
  let dup_outs = Circuit.inline ~into:c ~sub:duplicate ~prefix:"dup_" bindings in
  let miscompares =
    List.mapi
      (fun k (_, o) -> Circuit.add_gate c Gate.Xor [ o; dup_outs.(k) ])
      (Array.to_list outs)
  in
  let alarm_id = Circuit.reduce c Gate.Or miscompares in
  let alarm = Circuit.add_gate ~name:"alarm" c Gate.Buf [ alarm_id ] in
  Circuit.set_output c "alarm" alarm;
  { circuit = c;
    data_outputs = Array.to_list (Array.map fst outs);
    alarm_output = "alarm" }

(** Infective countermeasure: instead of (or in addition to) raising an
    alarm, a detected error *infects* every data output by XORing it with
    an error-and-randomness product, so faulty ciphertexts are useless for
    differential fault analysis. [random_input] names a fresh input that
    must be driven with randomness. *)
let infective_protect source =
  let base = duplicate_protect source in
  let c = base.circuit in
  let rnd = Circuit.add_input ~name:"infect_rnd" c in
  let alarm_id =
    match Circuit.find_by_name c "alarm" with
    | Some id -> id
    | None -> assert false
  in
  (* infection = alarm & (rnd | 1) -> alarm (always infect), alarm & rnd
     randomizes; combine both so output differs and is randomized. *)
  let infect = Circuit.add_gate ~name:"infect" c Gate.Or [ alarm_id; Circuit.add_gate c Gate.And [ alarm_id; rnd ] ] in
  let output_node nm =
    let outs = Circuit.outputs c in
    let rec find k =
      if k >= Array.length outs then invalid_arg ("infective: missing output " ^ nm)
      else if fst outs.(k) = nm then snd outs.(k)
      else find (k + 1)
    in
    find 0
  in
  let infected_outputs =
    List.map
      (fun nm ->
        let o = output_node nm in
        let scrambled = Circuit.add_gate c Gate.Xor [ o; infect ] in
        let rand_scramble = Circuit.add_gate c Gate.And [ infect; rnd ] in
        let final = Circuit.add_gate c Gate.Xor [ scrambled; rand_scramble ] in
        nm, final)
      base.data_outputs
  in
  (* Register the infected data outputs under fresh names; the raw
     (pre-infection) outputs stay declared for validation access. *)
  List.iter
    (fun (nm, o) -> Circuit.set_output c (nm ^ "_inf") o)
    infected_outputs;
  { circuit = c;
    data_outputs = List.map (fun (nm, _) -> nm ^ "_inf") infected_outputs;
    alarm_output = "alarm" }

(** Validation campaign (functional-validation row): for every fault in
    [faults] and every pattern, classify the outcome. *)
type outcome = Silent | Detected | Corrupted_undetected

let classify protected_c ~fault pattern =
  let c = protected_c.circuit in
  let golden = Netlist.Sim.eval c pattern in
  let faulty = Model.eval_faulty c ~faults:[ fault ] pattern in
  let outs = Circuit.outputs c in
  let index_of nm =
    let rec find k =
      if k >= Array.length outs then invalid_arg ("missing output " ^ nm)
      else if fst outs.(k) = nm then k
      else find (k + 1)
    in
    find 0
  in
  let alarm_idx = index_of protected_c.alarm_output in
  let data_idx = List.map index_of protected_c.data_outputs in
  let data_corrupted = List.exists (fun k -> golden.(k) <> faulty.(k)) data_idx in
  let alarmed = faulty.(alarm_idx) && not golden.(alarm_idx) in
  if alarmed then Detected
  else if data_corrupted then Corrupted_undetected
  else Silent

(** Detection statistics over a fault list and random patterns: fraction of
    data-corrupting faults that escape detection (the number an EDA flow
    must drive to zero). *)
let validate rng protected_c ~faults ~patterns =
  let ni = Circuit.num_inputs protected_c.circuit in
  let pats =
    List.init patterns (fun _ -> Array.init ni (fun _ -> Eda_util.Rng.bool rng))
  in
  let detected = ref 0 and escaped = ref 0 and silent = ref 0 in
  List.iter
    (fun fault ->
      (* Worst observed outcome across patterns. *)
      let worst =
        List.fold_left
          (fun acc p ->
            match acc, classify protected_c ~fault p with
            | Corrupted_undetected, _ | _, Corrupted_undetected -> Corrupted_undetected
            | Detected, _ | _, Detected -> Detected
            | Silent, Silent -> Silent)
          Silent pats
      in
      match worst with
      | Detected -> incr detected
      | Corrupted_undetected -> incr escaped
      | Silent -> incr silent)
    faults;
  !detected, !escaped, !silent
