(** Clock-glitch fault injection and the delay-sensor countermeasure
    ([9]; Table II, physical-synthesis x FIA cell "embedding sensors").

    A clock glitch shortens one cycle so that registers capture before the
    combinational logic settles: outputs whose paths are longer than the
    glitched period latch stale/incorrect values — a cheap, global fault
    an attacker sweeps until the cipher output breaks.

    The countermeasure is a canary (hidden-delay-fault sensor): a dummy
    path slightly *longer* than the critical path, launched every cycle;
    if the canary's endpoint fails to update, the cycle was too short and
    the result must be discarded — the sensor fires *before* the real
    datapath corrupts. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

(** Values captured when the clock edge arrives at [period_ps] after the
    input transition: each node holds its value from the last event before
    the edge (transport-delay event simulation). *)
let capture_at circuit ~period_ps ~prev_inputs ~next_inputs =
  let transitions = Timing.Event_sim.cycle circuit ~prev_inputs ~next_inputs in
  let values = Netlist.Sim.eval_all circuit prev_inputs in
  List.iter
    (fun tr ->
      if tr.Timing.Event_sim.time <= period_ps then
        values.(tr.Timing.Event_sim.node) <- tr.Timing.Event_sim.value)
    transitions;
  values

(** Outputs captured under a glitched clock of [period_ps]. *)
let glitched_outputs circuit ~period_ps ~prev_inputs ~next_inputs =
  let values = capture_at circuit ~period_ps ~prev_inputs ~next_inputs in
  Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit)

(** Attack sweep: decrease the clock period until some output is wrong;
    returns the largest period that induced a fault, or None if even the
    smallest tried period is safe. *)
let attack_sweep circuit ~periods ~prev_inputs ~next_inputs =
  let golden = Netlist.Sim.eval circuit next_inputs in
  let faulting =
    List.filter
      (fun period_ps ->
        glitched_outputs circuit ~period_ps ~prev_inputs ~next_inputs <> golden)
      periods
  in
  match List.sort (fun a b -> compare b a) faulting with
  | [] -> None
  | worst :: _ -> Some worst

type sensor = {
  guarded : Circuit.t;  (* circuit plus canary chain *)
  canary_output : int;  (* index in the output vector *)
  canary_delay_ps : float;
}

(** Guard a circuit with a canary: a toggle chain whose delay exceeds the
    critical path by [margin_ps]. Each cycle the canary input toggles; the
    canary output must follow it — if the captured canary differs from the
    expected (settled) value, the cycle was too short. *)
let add_sensor ?(margin_ps = 50.0) source =
  let guarded = Circuit.copy source in
  let critical = (Timing.Sta.analyze source).Timing.Sta.critical_path_delay in
  let canary_in = Circuit.add_input ~name:"canary_in" guarded in
  let stages = int_of_float (ceil ((critical +. margin_ps) /. Gate.delay Gate.Buf)) in
  let rec chain node k =
    if k = 0 then node
    else chain (Circuit.add_gate guarded Gate.Buf [ node ]) (k - 1)
  in
  let canary_out = chain canary_in (max 1 stages) in
  Circuit.set_output guarded "canary" canary_out;
  let canary_output = Circuit.num_outputs source in
  { guarded;
    canary_output;
    canary_delay_ps = Float.of_int (max 1 stages) *. Gate.delay Gate.Buf }

(** One guarded cycle under a (possibly glitched) clock: returns the data
    outputs and whether the sensor fired. The canary input toggles with
    the cycle; the sensor fires when the captured canary still shows the
    previous value. *)
let guarded_cycle sensor ~period_ps ~prev_inputs ~next_inputs =
  (* Extend the input vectors with the canary toggle: 0 -> 1. *)
  let prev = Array.append prev_inputs [| false |] in
  let next = Array.append next_inputs [| true |] in
  let values = capture_at sensor.guarded ~period_ps ~prev_inputs:prev ~next_inputs:next in
  let outs = Array.map (fun (_, o) -> values.(o)) (Circuit.outputs sensor.guarded) in
  let canary_captured = outs.(sensor.canary_output) in
  let data = Array.sub outs 0 sensor.canary_output in
  data, `Sensor_fired (not canary_captured)

(** Protection check over a period sweep: for every period, either the
    data is correct or the sensor fired (no silent corruption). Returns
    (silent corruptions, detected glitches, clean cycles). *)
let sweep_with_sensor sensor ~periods ~prev_inputs ~next_inputs =
  let golden =
    Netlist.Sim.eval sensor.guarded (Array.append next_inputs [| true |])
  in
  let golden_data = Array.sub golden 0 sensor.canary_output in
  let silent = ref 0 and detected = ref 0 and clean = ref 0 in
  List.iter
    (fun period_ps ->
      let data, `Sensor_fired fired = guarded_cycle sensor ~period_ps ~prev_inputs ~next_inputs in
      if fired then incr detected
      else if data <> golden_data then incr silent
      else incr clean)
    periods;
  !silent, !detected, !clean
