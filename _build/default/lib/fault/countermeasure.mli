(** Fault-attack countermeasures as netlist transforms (error-detecting
    architectures [10], infective countermeasures [18]) and their
    red-team validation. *)

type protected_circuit = {
  circuit : Netlist.Circuit.t;
  data_outputs : string list;  (** the functional outputs *)
  alarm_output : string;  (** raised on a detected error *)
}

(** Independent parity predictor + comparator; detects odd-multiplicity
    output corruption (and misses even — found by [validate]). *)
val parity_protect : Netlist.Circuit.t -> protected_circuit

(** Full duplication with output comparison; detects any fault confined to
    one copy (common-mode input faults escape). *)
val duplicate_protect : Netlist.Circuit.t -> protected_circuit

(** Duplication plus output infection: on a detected error the data
    outputs are scrambled with randomness (input ["infect_rnd"]), denying
    DFA its faulty ciphertexts. Infected outputs are registered with an
    ["_inf"] suffix. *)
val infective_protect : Netlist.Circuit.t -> protected_circuit

type outcome = Silent | Detected | Corrupted_undetected

(** Outcome of one fault under one pattern. *)
val classify : protected_circuit -> fault:Model.fault -> bool array -> outcome

(** Random-pattern campaign over a fault list: (detected, escaped, silent)
    counts, scoring each fault by its worst outcome. *)
val validate :
  Eda_util.Rng.t ->
  protected_circuit ->
  faults:Model.fault list ->
  patterns:int ->
  int * int * int
