(** Fault models and faulty simulation: permanent stuck-at faults (the
    ATPG target), transient bit-flips (laser/EM injection). Injection
    overrides the fault site's value during evaluation — the simulation-
    level substitute for a physical rig. *)

type fault =
  | Stuck_at of { node : int; value : bool }
  | Bit_flip of { node : int }  (** transient inversion of the computed value *)

val node_of : fault -> int

(** Human-readable description, e.g. ["s-a-1 @ G22"]. *)
val describe : Netlist.Circuit.t -> fault -> string

(** Evaluate all nets with [faults] active. *)
val eval_all_faulty :
  ?state:bool array -> Netlist.Circuit.t -> faults:fault list -> bool array -> bool array

(** Primary outputs with [faults] active. *)
val eval_faulty :
  ?state:bool array -> Netlist.Circuit.t -> faults:fault list -> bool array -> bool array

(** Both polarities of stuck-at on every input, gate and DFF site. *)
val all_stuck_at_faults : Netlist.Circuit.t -> fault list

(** Does the pattern change any primary output under the fault? *)
val detects : Netlist.Circuit.t -> fault:fault -> bool array -> bool

(** Per-fault detection by a pattern set. *)
val fault_simulation :
  Netlist.Circuit.t -> faults:fault list -> patterns:bool array list -> (fault * bool) list

(** Fraction of [faults] detected by [patterns] (1.0 on an empty list). *)
val coverage : Netlist.Circuit.t -> faults:fault list -> patterns:bool array list -> float
