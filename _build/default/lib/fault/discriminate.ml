(** Natural-versus-malicious fault discrimination (Sec. III-F, [59]): a
    DFX infrastructure that detects an error must decide between fastest
    recovery (natural transient) and re-keying / service discontinuation
    (tampering). The discriminator below implements the paper's criterion:
    natural transients are rare and spatially uniform; injected faults
    cluster in time (attacker iterates) and in location (aimed at the
    cipher's last rounds). *)

module Rng = Eda_util.Rng

type event = { cycle : int; site : int }

type verdict = Natural | Malicious

type config = {
  window : int;  (* cycles per observation window *)
  rate_threshold : int;  (* events per window above which we suspect attack *)
  locality_threshold : float;  (* fraction of events on one site *)
}

let default_config = { window = 1000; rate_threshold = 3; locality_threshold = 0.5 }

(** Classify a stream of detection events. *)
let classify config events =
  match events with
  | [] -> Natural
  | _ :: _ ->
    let by_window = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let w = e.cycle / config.window in
        Hashtbl.replace by_window w (1 + Option.value ~default:0 (Hashtbl.find_opt by_window w)))
      events;
    let max_rate = Hashtbl.fold (fun _ c acc -> max c acc) by_window 0 in
    let by_site = Hashtbl.create 16 in
    List.iter
      (fun e ->
        Hashtbl.replace by_site e.site (1 + Option.value ~default:0 (Hashtbl.find_opt by_site e.site)))
      events;
    let max_site = Hashtbl.fold (fun _ c acc -> max c acc) by_site 0 in
    let locality = Float.of_int max_site /. Float.of_int (List.length events) in
    if max_rate > config.rate_threshold || (List.length events >= 4 && locality >= config.locality_threshold)
    then Malicious
    else Natural

(** Simulate a natural-SEU environment: events Poisson-ish at [rate] per
    window, uniform over [sites]. *)
let natural_stream rng ~cycles ~sites ~events =
  List.init events (fun _ -> { cycle = Rng.int rng cycles; site = Rng.int rng sites })

(** Simulate an attack campaign: [events] injections clustered on one site
    within a burst of [burst] cycles. *)
let attack_stream rng ~cycles ~sites ~events ~burst =
  let site = Rng.int rng sites in
  let start = Rng.int rng (max 1 (cycles - burst)) in
  List.init events (fun _ -> { cycle = start + Rng.int rng burst; site })

(** Discrimination accuracy experiment: fraction of correct verdicts over
    [trials] of each scenario. *)
let accuracy rng config ~trials =
  let correct_nat = ref 0 and correct_att = ref 0 in
  for _ = 1 to trials do
    let nat = natural_stream rng ~cycles:100_000 ~sites:64 ~events:3 in
    if classify config nat = Natural then incr correct_nat;
    let att = attack_stream rng ~cycles:100_000 ~sites:64 ~events:8 ~burst:500 in
    if classify config att = Malicious then incr correct_att
  done;
  ( Float.of_int !correct_nat /. Float.of_int trials,
    Float.of_int !correct_att /. Float.of_int trials )
