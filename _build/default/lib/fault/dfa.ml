(** Differential fault analysis on AES (the attack an infective
    countermeasure defeats). Classic last-round DFA: a single-bit fault is
    injected into one state byte just before the final SubBytes; each
    correct/faulty ciphertext pair constrains the corresponding byte of the
    last round key, and intersecting candidate sets over a few pairs leaves
    exactly one key byte. *)

module Rng = Eda_util.Rng

(* Position in the last-round state (before ShiftRows) that lands at
   ciphertext byte [ct_pos]: ShiftRows moves (row, col) -> (row, col - row).
   State byte k sits at row k mod 4, column k / 4. *)
let preimage_of_ct_pos ct_pos =
  let row = ct_pos mod 4 and col = ct_pos / 4 in
  (4 * ((col + row) mod 4)) + row

(** Encrypt with a single-bit fault injected into state byte [byte] (state
    just before the last round), returning (correct, faulty) ciphertexts. *)
let faulty_encrypt rng ks plaintext ~byte =
  let correct = Crypto.Aes.encrypt ks plaintext in
  (* Re-run the first 9 rounds, flip one bit, finish the last round. *)
  let state = ref (Crypto.Aes.add_round_key plaintext ks.(0)) in
  for r = 1 to 9 do
    state :=
      Crypto.Aes.add_round_key
        (Crypto.Aes.mix_columns (Crypto.Aes.shift_rows (Crypto.Aes.sub_bytes !state)))
        ks.(r)
  done;
  let bit = 1 lsl Rng.int rng 8 in
  let faulted = Array.copy !state in
  faulted.(byte) <- faulted.(byte) lxor bit;
  let faulty =
    Crypto.Aes.add_round_key (Crypto.Aes.shift_rows (Crypto.Aes.sub_bytes faulted)) ks.(10)
  in
  correct, faulty

(** Candidate last-round-key bytes for ciphertext position [ct_pos]
    explained by a single-bit fault model. *)
let candidates ~ct_pos ~correct ~faulty =
  let cj = correct.(ct_pos) and cj' = faulty.(ct_pos) in
  if cj = cj' then List.init 256 (fun k -> k)
  else
    List.filter
      (fun k ->
        let x = Crypto.Aes.inv_sbox.(cj lxor k) in
        let x' = Crypto.Aes.inv_sbox.(cj' lxor k) in
        let e = x lxor x' in
        (* single-bit difference *)
        e <> 0 && e land (e - 1) = 0)
      (List.init 256 (fun k -> k))

(** Recover byte [ct_pos] of the last round key using faulty encryptions
    until the candidate set is a singleton (or [max_pairs] reached).
    Returns the recovered byte and the number of pairs used. *)
let recover_key_byte rng ks ~ct_pos ~max_pairs =
  let state_byte = preimage_of_ct_pos ct_pos in
  let rec loop candidates_left pairs =
    match candidates_left with
    | [ k ] -> Some k, pairs
    | _ when pairs >= max_pairs -> None, pairs
    | _ ->
      let pt = Array.init 16 (fun _ -> Rng.int rng 256) in
      let correct, faulty = faulty_encrypt rng ks pt ~byte:state_byte in
      let cands = candidates ~ct_pos ~correct ~faulty in
      let remaining = List.filter (fun k -> List.mem k cands) candidates_left in
      loop remaining (pairs + 1)
  in
  loop (List.init 256 (fun k -> k)) 0

(** Full last-round-key recovery; returns recovered bytes (Some/None per
    position) and total fault injections used. *)
let recover_last_round_key rng ks ~max_pairs_per_byte =
  let total = ref 0 in
  let bytes =
    Array.init 16 (fun ct_pos ->
        let k, pairs = recover_key_byte rng ks ~ct_pos ~max_pairs:max_pairs_per_byte in
        total := !total + pairs;
        k)
  in
  bytes, !total

(** DFA against an infective implementation: the fault is detected and the
    output randomized, so candidate filtering receives garbage and the
    candidate set collapses to empty (attack failure) instead of a key. *)
let recover_with_infection rng ks ~ct_pos ~max_pairs =
  let state_byte = preimage_of_ct_pos ct_pos in
  let rec loop candidates_left pairs =
    match candidates_left with
    | [ k ] -> Some k, pairs
    | [] -> None, pairs
    | _ when pairs >= max_pairs -> None, pairs
    | _ ->
      let pt = Array.init 16 (fun _ -> Rng.int rng 256) in
      let correct, _faulty = faulty_encrypt rng ks pt ~byte:state_byte in
      (* Infection: the device detects the mismatch and releases a random
         ciphertext instead of the faulty one. *)
      let infected = Array.init 16 (fun _ -> Rng.int rng 256) in
      let cands = candidates ~ct_pos ~correct ~faulty:infected in
      let remaining = List.filter (fun k -> List.mem k cands) candidates_left in
      loop remaining (pairs + 1)
  in
  loop (List.init 256 (fun k -> k)) 0
