lib/fault/formal.ml: Array Countermeasure Hashtbl List Model Netlist Sat
