lib/fault/countermeasure.ml: Array Eda_util List Model Netlist
