lib/fault/dfa.ml: Array Crypto Eda_util List
