lib/fault/glitch_attack.ml: Array Float List Netlist Timing
