lib/fault/discriminate.ml: Eda_util Float Hashtbl List Option
