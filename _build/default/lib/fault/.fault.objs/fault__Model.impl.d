lib/fault/model.ml: Array Float Hashtbl List Netlist Printf
