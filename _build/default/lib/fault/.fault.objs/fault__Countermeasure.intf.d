lib/fault/countermeasure.mli: Eda_util Model Netlist
