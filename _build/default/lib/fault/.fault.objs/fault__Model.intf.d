lib/fault/model.mli: Netlist
