(** IP watermarking — the counterfeiting countermeasure the paper lists
    next to PUFs (Sec. II-A.3, [12]). Two classic schemes with opposite
    robustness properties:

    - [structural]: the signature is spelled by the polarity of
      transparent buffer/double-inverter gadgets spliced into selected
      nets. Zero functional impact — and zero robustness: any resynthesis
      (constant propagation removes double negations) erases it. Included
      as the cautionary baseline.

    - [functional]: the signature is embedded in the circuit's *function*
      on designated don't-care input patterns (unused opcodes etc.): on
      pattern p_k, output 0 is forced to signature bit k. Survives any
      function-preserving resynthesis by construction; costs one
      comparator per signature bit. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

(* --- structural ------------------------------------------------------- *)

type structural_mark = {
  s_circuit : Circuit.t;
  gadget_names : string array;  (* first gate of each gadget, in bit order *)
  s_signature : bool array;
}

let embed_structural rng ~bits source =
  let eligible =
    List.filter
      (fun i -> Gate.is_combinational (Circuit.kind source i))
      (List.init (Circuit.node_count source) (fun i -> i))
  in
  assert (List.length eligible >= bits);
  let chosen = Rng.sample rng bits (List.length eligible) in
  let arr = Array.of_list eligible in
  let marks = Hashtbl.create 16 in
  Array.iteri (fun k idx -> Hashtbl.replace marks arr.(idx) k) chosen;
  let signature = Array.init bits (fun _ -> Rng.bool rng) in
  let out = Circuit.create () in
  let n = Circuit.node_count source in
  let remap = Array.make n (-1) in
  let gadget_names = Array.make bits "" in
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name source i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node source i in
    let fanins =
      if nd.Circuit.kind = Gate.Dff then [| 0 |]
      else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
    in
    let id = Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i) in
    remap.(i) <-
      (match Hashtbl.find_opt marks i with
       | None -> id
       | Some k ->
         (* bit 1: NOT-NOT gadget; bit 0: BUF-BUF gadget. *)
         let kind = if signature.(k) then Gate.Not else Gate.Buf in
         let g1 = Circuit.add_node_raw out kind [| id |] "" in
         let g2 = Circuit.add_node_raw out kind [| g1 |] "" in
         gadget_names.(k) <- Circuit.name out g1;
         g2)
  done;
  for i = 0 to n - 1 do
    if Circuit.kind source i = Gate.Dff then
      Circuit.connect_dff out remap.(i) ~d:remap.((Circuit.fanins source i).(0))
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs source);
  { s_circuit = out; gadget_names; s_signature = signature }

(** Read a structural signature back (owner knows the gadget positions). *)
let read_structural mark =
  Array.map
    (fun nm ->
      match Circuit.find_by_name mark.s_circuit nm with
      | Some id ->
        (match Circuit.kind mark.s_circuit id with
         | Gate.Not -> Some true
         | Gate.Buf -> Some false
         | Gate.Input | Gate.Const _ | Gate.And | Gate.Nand | Gate.Or
         | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Dff -> None)
      | None -> None)
    mark.gadget_names

let structural_intact mark =
  let readout = read_structural mark in
  Array.for_all2 (fun r s -> r = Some s) readout mark.s_signature

(* --- functional ------------------------------------------------------- *)

type functional_mark = {
  f_circuit : Circuit.t;
  patterns : bool array array;  (* the secret don't-care input patterns *)
  f_signature : bool array;
}

(** Embed [bits] signature bits on secret input patterns. The caller
    guarantees the patterns are functional don't-cares of the design's
    specification (unused opcodes, reserved addresses); the transform
    overrides output 0 on those patterns. *)
let embed_functional rng ~bits source =
  let ni = Circuit.num_inputs source in
  assert (ni <= 60);
  let signature = Array.init bits (fun _ -> Rng.bool rng) in
  (* Draw distinct secret patterns. *)
  let seen = Hashtbl.create 16 in
  let patterns =
    Array.init bits (fun _ ->
        let rec fresh () =
          let p = Array.init ni (fun _ -> Rng.bool rng) in
          let key = Array.to_list p in
          if Hashtbl.mem seen key then fresh ()
          else begin
            Hashtbl.replace seen key ();
            p
          end
        in
        fresh ())
  in
  let out = Circuit.copy source in
  let ins = Circuit.inputs out in
  (* match_k = AND over input literals of pattern k. *)
  let force =
    Array.to_list
      (Array.mapi
         (fun k p ->
           let literals =
             Array.to_list
               (Array.mapi
                  (fun j b ->
                    if b then ins.(j) else Circuit.add_gate out Gate.Not [ ins.(j) ])
                  p)
           in
           let matches = Circuit.reduce out Gate.And literals in
           k, matches)
         patterns)
  in
  (* Output 0 rerouted: on a match, output the signature bit. *)
  let nm0, o0 = (Circuit.outputs source).(0) in
  let final =
    List.fold_left
      (fun acc (k, matches) ->
        let bit = Circuit.add_const out signature.(k) in
        Circuit.add_gate out Gate.Mux [ matches; acc; bit ])
      o0 force
  in
  (* Rebuild so the output list has output 0 re-pointed at the marked
     mux chain (outputs cannot be re-pointed in place). *)
  let out2 = Circuit.create () in
  let n = Circuit.node_count out in
  let remap = Array.make n (-1) in
  for i = 0 to n - 1 do
    let nd = Circuit.node out i in
    let fanins =
      if nd.Circuit.kind = Gate.Dff then [| 0 |]
      else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
    in
    remap.(i) <- Circuit.add_node_raw out2 nd.Circuit.kind fanins nd.Circuit.name
  done;
  for i = 0 to n - 1 do
    if Circuit.kind out i = Gate.Dff then
      Circuit.connect_dff out2 remap.(i) ~d:remap.((Circuit.fanins out i).(0))
  done;
  Array.iteri
    (fun k (nm, o) ->
      if k = 0 then Circuit.set_output out2 nm0 remap.(final)
      else Circuit.set_output out2 nm remap.(o))
    (Circuit.outputs source);
  { f_circuit = out2; patterns; f_signature = signature }

(** Owner's readout: evaluate the suspect circuit on the secret patterns
    and compare output 0 to the signature. Returns the match count. *)
let verify_functional mark suspect =
  let hits = ref 0 in
  Array.iteri
    (fun k p ->
      if (Netlist.Sim.eval suspect p).(0) = mark.f_signature.(k) then incr hits)
    mark.patterns;
  !hits

(** Probability that an innocent design matches [bits] signature bits by
    chance: 2^-bits (the ownership-proof strength). *)
let false_claim_probability ~bits = 2.0 ** Float.of_int (-bits)
