(** Structural attacks on logic locking (SAIL [50]): the key insight is
    that key-gate neighbourhoods betray the key bit without any oracle,
    because synthesis transformations that hide the polarity are local and
    learnable. Two attacker strengths are modelled:

    - [naive]: reads only the key-gate type (XOR -> 0, XNOR -> 1). Fooled
      by inserting an inverter on the key path and swapping the gate type.
    - [local_reconstruction]: additionally traces inverters between the key
      input and the key gate — the "learned resynthesis inversion" of SAIL
      — recovering the polarity the naive rule misses. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type strength = Naive | Local_reconstruction

(* For a key input, find its consuming key gate and the inversion parity of
   the path from key input to gate. *)
let key_gate_info locked key_node =
  let c = (locked : Lock.locked).Lock.circuit in
  let fanouts = Circuit.fanouts c in
  let rec chase node parity =
    match fanouts.(node) with
    | [ consumer ] ->
      (match Circuit.kind c consumer with
       | Gate.Not -> chase consumer (not parity)
       | Gate.Buf -> chase consumer parity
       | Gate.Xor -> Some (`Xor, parity)
       | Gate.Xnor -> Some (`Xnor, parity)
       | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Mux | Gate.Input
       | Gate.Const _ | Gate.Dff -> None)
    | [] | _ :: _ :: _ -> None
  in
  chase key_node false

(** Guess every key bit; returns per-bit guesses (None when the local
    structure is not a recognizable key gate). *)
let guess_key ~strength locked =
  Array.map
    (fun key_node ->
      match key_gate_info locked key_node with
      | None -> None
      | Some (gate, inverted) ->
        (match strength with
         | Naive ->
           (* XNOR gate -> key bit 1; ignores path inversions. *)
           Some (gate = `Xnor)
         | Local_reconstruction ->
           (* Correct for the traced inversion parity. *)
           Some ((gate = `Xnor) <> inverted)))
    locked.Lock.key_inputs

(** Fraction of key bits guessed correctly (unknowns count as coin flips,
    scored 0.5). *)
let accuracy ~strength locked =
  let guesses = guess_key ~strength locked in
  let score = ref 0.0 in
  Array.iteri
    (fun k g ->
      match g with
      | None -> score := !score +. 0.5
      | Some b -> if b = locked.Lock.correct_key.(k) then score := !score +. 1.0)
    guesses;
  !score /. Float.of_int (Array.length guesses)
