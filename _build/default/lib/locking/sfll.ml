(** SFLL-HD ("stripped-functionality logic locking, Hamming distance"),
    the SAT-attack-resilient scheme whose unlocking [51] the paper cites.

    The vendor strips functionality: the output is flipped whenever the
    input is at Hamming distance [h] from a hard-coded secret pattern. The
    restore unit flips it back whenever the input is at distance [h] from
    the *key*. With key = secret the circuit is correct; each wrong key
    corrupts only inputs near it, so every SAT-attack DIP eliminates few
    keys and the attack needs exponentially many iterations in the worst
    case — the step-function security the paper discusses in Sec. IV. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

(* Population count of a list of bits as a binary number (LSB first): a
   sequential counter of half-adder ripples, one per input bit. *)
let popcount c bits =
  let half_adder a b =
    Circuit.add_gate c Gate.Xor [ a; b ], Circuit.add_gate c Gate.And [ a; b ]
  in
  let width = 1 + int_of_float (ceil (log (float_of_int (List.length bits + 1)) /. log 2.0)) in
  let zero = Circuit.add_const c false in
  let acc = Array.make width zero in
  List.iter
    (fun bit ->
      let carry = ref bit in
      for w = 0 to width - 1 do
        let s, cout = half_adder acc.(w) !carry in
        acc.(w) <- s;
        carry := cout
      done)
    bits;
  acc

(* Comparator: does the binary number [num] (array LSB first) equal the
   constant [v]? *)
let equals_const c num v =
  let bits =
    Array.to_list
      (Array.mapi
         (fun w b ->
           if (v lsr w) land 1 = 1 then b else Circuit.add_gate c Gate.Not [ b ])
         num)
  in
  Circuit.reduce c Gate.And bits

(** Lock [source] (single-output circuits are the classic target; all
    outputs are protected through the first output) with SFLL-HD
    parameter [h]. The secret pattern doubles as the correct key. *)
let lock rng ~h source =
  assert (Circuit.num_dffs source = 0);
  let ni = Circuit.num_inputs source in
  let secret = Array.init ni (fun _ -> Eda_util.Rng.bool rng) in
  let out = Circuit.create () in
  let key_inputs =
    Array.init ni (fun k -> Circuit.add_input ~name:(Printf.sprintf "key%d" k) out)
  in
  let data_inputs =
    Array.map
      (fun id -> Circuit.add_input ~name:(Circuit.name source id) out)
      (Circuit.inputs source)
  in
  let func_outs = Circuit.inline ~into:out ~sub:source ~prefix:"f_" data_inputs in
  (* Strip: flip output 0 when HD(x, secret) = h. The hard-coded secret is
     folded into XOR/XNOR choices, leaving no readable constant. *)
  let strip_bits =
    (* Bit k of the distance vector is x_k xor secret_k; the secret is a
       constant, so it folds into a NOT or a plain buffer. *)
    Array.to_list
      (Array.mapi
         (fun k x ->
           if secret.(k) then Circuit.add_gate out Gate.Not [ x ]
           else Circuit.add_gate out Gate.Buf [ x ])
         data_inputs)
  in
  let strip_count = popcount out strip_bits in
  let strip_hit = equals_const out strip_count h in
  (* Restore: flip back when HD(x, key) = h. *)
  let restore_bits =
    Array.to_list
      (Array.mapi (fun k x -> Circuit.add_gate out Gate.Xor [ x; key_inputs.(k) ]) data_inputs)
  in
  let restore_count = popcount out restore_bits in
  let restore_hit = equals_const out restore_count h in
  let flip = Circuit.add_gate out Gate.Xor [ strip_hit; restore_hit ] in
  Array.iteri
    (fun k (nm, _) ->
      let o = func_outs.(k) in
      if k = 0 then begin
        let y = Circuit.add_gate out Gate.Xor [ o; flip ] in
        Circuit.set_output out nm y
      end
      else Circuit.set_output out nm o)
    (Circuit.outputs source);
  { Lock.circuit = out; key_inputs; data_inputs; correct_key = secret }
