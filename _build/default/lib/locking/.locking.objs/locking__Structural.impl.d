lib/locking/structural.ml: Array Float Lock Netlist
