lib/locking/sat_attack.ml: Array List Lock Netlist Sat
