lib/locking/sat_attack.mli: Lock Netlist Sat
