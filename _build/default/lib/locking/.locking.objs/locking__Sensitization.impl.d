lib/locking/sensitization.ml: Array Float List Lock Netlist Sat
