lib/locking/watermark.ml: Array Eda_util Float Hashtbl List Netlist
