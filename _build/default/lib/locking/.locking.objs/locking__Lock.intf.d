lib/locking/lock.mli: Eda_util Netlist
