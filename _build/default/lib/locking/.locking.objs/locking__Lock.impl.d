lib/locking/lock.ml: Array Eda_util Float Hashtbl List Netlist Printf Sat Synth
