lib/locking/sfll.ml: Array Eda_util List Lock Netlist Printf
