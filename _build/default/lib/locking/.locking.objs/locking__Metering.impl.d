lib/locking/metering.ml: Array Eda_util Hashtbl List Netlist Printf Queue
