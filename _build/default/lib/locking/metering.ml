(** Active hardware metering (Alkabani & Koushanfar [19]; Table II,
    high-level-synthesis x piracy cell): every fabricated chip powers up
    into a *locked* FSM state derived from its unique ID (a PUF response in
    practice), and only the IP owner — who knows the FSM's transition
    structure — can compute the per-chip unlock input sequence. The
    foundry can overproduce silicon but cannot activate it, so every
    working chip is accounted for.

    Model: [state_bits] lock flip-flops are added. Each cycle in the
    locked mode, the lock register absorbs the [unlock] input through a
    keyed next-state function; the design's outputs are gated (forced low)
    until the register reaches the all-ones unlock state. The unlock
    sequence for a chip is a fixed walk determined by the secret transition
    keys and the chip's power-up ID. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

type metered = {
  circuit : Circuit.t;
  state_bits : int;
  (* secret per-step XOR keys of the absorbing next-state function *)
  transition_keys : bool array array;
  unlock_input_pos : int;  (* position of the serial unlock input *)
  data_positions : int array;
}

(* Next-state: s' = rotate(s) xor (unlock ? key_a : key_b) — a keyed
   permutation network; reaching all-ones requires knowing the keys. *)
let next_state ~keys s unlock =
  let n = Array.length s in
  let rotated = Array.init n (fun i -> s.((i + 1) mod n)) in
  let key = if unlock then keys.(0) else keys.(1) in
  Array.init n (fun i -> rotated.(i) <> key.(i))

(* Pack a state as an int for the BFS frontier. *)
let pack s =
  let v = ref 0 in
  for i = Array.length s - 1 downto 0 do
    v := (!v lsl 1) lor (if s.(i) then 1 else 0)
  done;
  !v

(** The owner's computation of an unlock sequence from the chip's power-up
    ID: breadth-first search over the keyed FSM's state graph (the owner
    knows the transition keys; the state space is tiny for the owner but
    the walk is infeasible to guess bit-by-bit from outside). *)
let unlock_sequence ~keys ~max_steps power_up_id =
  let n = Array.length power_up_id in
  let target = Array.make n true in
  let target_packed = pack target in
  let visited = Hashtbl.create 256 in
  let queue = Queue.create () in
  Queue.add (power_up_id, []) queue;
  Hashtbl.replace visited (pack power_up_id) ();
  let rec bfs () =
    if Queue.is_empty queue then None
    else begin
      let s, acc = Queue.pop queue in
      if pack s = target_packed then Some (List.rev acc)
      else if List.length acc >= max_steps then bfs ()
      else begin
        List.iter
          (fun bit ->
            let s' = next_state ~keys s bit in
            let key = pack s' in
            if not (Hashtbl.mem visited key) then begin
              Hashtbl.replace visited key ();
              Queue.add (s', bit :: acc) queue
            end)
          [ true; false ];
        bfs ()
      end
    end
  in
  bfs ()

(* Rank over GF(2) of the cyclic rotations of the key difference d: when
   full, every power-up state can reach the unlock state, so [meter]
   redraws keys until this holds. *)
let rotations_full_rank d =
  let n = Array.length d in
  let as_int s =
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl 1) lor (if s.(i) then 1 else 0)
    done;
    !v
  in
  let rows =
    Array.init n (fun r -> as_int (Array.init n (fun i -> d.((i + r) mod n))))
  in
  let rank = ref 0 in
  let rows = Array.copy rows in
  for col = 0 to n - 1 do
    let pivot = ref (-1) in
    for r = !rank to n - 1 do
      if !pivot < 0 && (rows.(r) lsr col) land 1 = 1 then pivot := r
    done;
    if !pivot >= 0 then begin
      let tmp = rows.(!rank) in
      rows.(!rank) <- rows.(!pivot);
      rows.(!pivot) <- tmp;
      for r = 0 to n - 1 do
        if r <> !rank && (rows.(r) lsr col) land 1 = 1 then rows.(r) <- rows.(r) lxor rows.(!rank)
      done;
      incr rank
    end
  done;
  !rank = n

let meter rng ~state_bits source =
  assert (state_bits >= 2 && state_bits <= 16);
  (* Redraw keys until the difference's rotation span is full rank, which
     guarantees every chip ID admits an unlock sequence. *)
  let rec draw_keys () =
    let keys = Array.init 2 (fun _ -> Array.init state_bits (fun _ -> Rng.bool rng)) in
    let d = Array.init state_bits (fun i -> keys.(0).(i) <> keys.(1).(i)) in
    if rotations_full_rank d then keys else draw_keys ()
  in
  let keys = draw_keys () in
  let out = Circuit.create () in
  let unlock = Circuit.add_input ~name:"unlock" out in
  (* Lock register. *)
  let lock_ffs =
    Array.init state_bits (fun k -> Circuit.add_dff ~name:(Printf.sprintf "lock%d" k) out ~d:0)
  in
  (* Copy the design. *)
  let n = Circuit.node_count source in
  let remap = Array.make n (-1) in
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name source i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node source i in
    let fanins =
      if nd.Circuit.kind = Gate.Dff then [| 0 |]
      else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
    in
    remap.(i) <- Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i)
  done;
  for i = 0 to n - 1 do
    if Circuit.kind source i = Gate.Dff then
      Circuit.connect_dff out remap.(i) ~d:remap.((Circuit.fanins source i).(0))
  done;
  (* Lock FSM next-state logic: s' = rotate(s) xor (unlock ? keyA : keyB)
     once unlocked (all ones), hold. *)
  let unlocked = Circuit.reduce out Gate.And (Array.to_list lock_ffs) in
  Array.iteri
    (fun k ff ->
      let rotated = lock_ffs.((k + 1) mod state_bits) in
      let ka = Circuit.add_const out keys.(0).(k) in
      let kb = Circuit.add_const out keys.(1).(k) in
      let key_bit = Circuit.add_gate out Gate.Mux [ unlock; kb; ka ] in
      let stepped = Circuit.add_gate out Gate.Xor [ rotated; key_bit ] in
      (* Hold the unlocked state forever. *)
      let d = Circuit.add_gate out Gate.Mux [ unlocked; stepped; ff ] in
      Circuit.connect_dff out ff ~d)
    lock_ffs;
  (* Gate every output with the unlocked flag. *)
  Array.iter
    (fun (nm, o) ->
      let gated = Circuit.add_gate out Gate.And [ remap.(o); unlocked ] in
      Circuit.set_output out nm gated)
    (Circuit.outputs source);
  let pos_of =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs out);
    fun id -> Hashtbl.find tbl id
  in
  { circuit = out;
    state_bits;
    transition_keys = keys;
    unlock_input_pos = pos_of unlock;
    data_positions =
      Array.map (fun id -> pos_of remap.(id)) (Circuit.inputs source) }

(** Run [steps] unlock cycles with the given bit sequence, from the given
    power-up lock state; returns the final full DFF state. Lock flip-flops
    occupy the first [state_bits] positions of the state vector (they are
    declared first). *)
let drive_unlock metered ~power_up_id sequence =
  let c = metered.circuit in
  let total_ffs = Circuit.num_dffs c in
  let state = ref (Array.make total_ffs false) in
  Array.blit power_up_id 0 !state 0 metered.state_bits;
  List.iter
    (fun bit ->
      let vec = Array.make (Circuit.num_inputs c) false in
      vec.(metered.unlock_input_pos) <- bit;
      let _, next = Netlist.Sim.step c ~state:!state vec in
      state := next)
    sequence;
  !state

let is_unlocked metered state =
  let ok = ref true in
  for k = 0 to metered.state_bits - 1 do
    if not state.(k) then ok := false
  done;
  !ok

(** Evaluate the (combinational) payload under a given lock state. *)
let eval metered ~state ~data =
  let c = metered.circuit in
  let vec = Array.make (Circuit.num_inputs c) false in
  Array.iteri (fun k pos -> vec.(pos) <- data.(k)) metered.data_positions;
  fst (Netlist.Sim.step c ~state vec)

(** End-to-end activation check: owner computes the sequence for a chip ID
    and the chip starts working; a random sequence of the same length
    almost never unlocks. *)
let activation_works rng metered ~original =
  let id = Array.init metered.state_bits (fun _ -> Rng.bool rng) in
  match unlock_sequence ~keys:metered.transition_keys ~max_steps:(4 * metered.state_bits) id with
  | None -> false
  | Some seq ->
    let state = drive_unlock metered ~power_up_id:id seq in
    is_unlocked metered state
    &&
    let ni = Array.length metered.data_positions in
    let ok = ref true in
    for _ = 1 to 50 do
      let data = Array.init ni (fun _ -> Rng.bool rng) in
      if eval metered ~state ~data <> Netlist.Sim.eval original data then ok := false
    done;
    !ok
