(** The oracle-guided SAT attack on logic locking (Subramanyan et al.;
    the paper cites its SMT successor [33]). The attacker holds the locked
    netlist and a working chip (the oracle); distinguishing input patterns
    prune keys until any consistent key is provably correct. *)

type result = {
  key : bool array option;  (** recovered key, if the attack converged *)
  iterations : int;  (** number of DIP oracle queries *)
  solver_stats : Sat.Solver.stats;
}

(** Run the attack; [oracle data] must return the correct outputs for the
    data inputs. [max_iterations] (default 256) bounds the DIP loop:
    hitting it returns [{ key = None; _ }] — the scheme resisted this
    attacker budget. *)
val run : ?max_iterations:int -> oracle:(bool array -> bool array) -> Lock.locked -> result

(** Oracle built from the original (activated) circuit. *)
val oracle_of_circuit : Netlist.Circuit.t -> bool array -> bool array

(** Success check: the recovered key need not equal the inserted key
    bit-for-bit, only activate an equivalent circuit (SAT-checked). *)
val recovered_key_correct : Lock.locked -> original:Netlist.Circuit.t -> result -> bool
