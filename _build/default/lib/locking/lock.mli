(** Logic locking (EPIC [24] and friends): key gates inserted into the
    netlist so that only the correct key restores the original function.

    Input convention of a locked circuit: key inputs are declared first
    (named key0, key1, ...), then the original data inputs in their
    original order. Use {!eval} / {!apply_key} rather than raw
    simulation. *)

type locked = {
  circuit : Netlist.Circuit.t;
  key_inputs : int array;
  data_inputs : int array;
  correct_key : bool array;
}

type style =
  | Xor_only  (** key-gate polarity reveals the key bit: SAIL-vulnerable *)
  | Polarity_hidden  (** gate type decorrelated from the key bit *)

(** Insert [key_bits] XOR/XNOR key gates on randomly chosen internal
    nets (default style {!Polarity_hidden}).
    @raise Assert_failure when the circuit has fewer lockable sites than
    [key_bits]. *)
val epic :
  Eda_util.Rng.t -> ?style:style -> key_bits:int -> Netlist.Circuit.t -> locked

(** Full input vector from a key and data assignment. *)
val input_vector : locked -> key:bool array -> data:bool array -> bool array

val eval : locked -> key:bool array -> data:bool array -> bool array

(** Specialize under a fixed key (key inputs become constants, then
    constant propagation) — the activated product. *)
val apply_key : locked -> key:bool array -> Netlist.Circuit.t

(** SAT equivalence of the activated design against the original; [None]
    when correct, otherwise a distinguishing input. *)
val verify_correct : locked -> original:Netlist.Circuit.t -> bool array option

(** Fraction of random patterns a wrong key corrupts (ideal: 0.5). *)
val corruption :
  Eda_util.Rng.t ->
  locked ->
  original:Netlist.Circuit.t ->
  wrong_key:bool array ->
  patterns:int ->
  float
