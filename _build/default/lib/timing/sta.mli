(** Static timing analysis over per-kind nominal delays. Primary inputs
    and DFF outputs launch at time 0; endpoints are primary outputs and
    DFF D-inputs. *)

type report = {
  arrival : float array;  (** per node, picoseconds *)
  critical_path_delay : float;
  critical_output : string;  (** name of the latest endpoint *)
}

(** Arrival times; [delay_of node kind] overrides the library delays, e.g.
    with process variation for fingerprinting. *)
val arrival_times :
  ?delay_of:(int -> Netlist.Gate.kind -> float) -> Netlist.Circuit.t -> float array

val analyze :
  ?delay_of:(int -> Netlist.Gate.kind -> float) -> Netlist.Circuit.t -> report

(** Logic depth in gate levels (unit-delay model). *)
val depth : Netlist.Circuit.t -> int

(** Per-node delay function with Gaussian process variation of relative
    [sigma]; deterministic in the generator state. *)
val varied_delays :
  Eda_util.Rng.t -> sigma:float -> Netlist.Circuit.t -> int -> Netlist.Gate.kind -> float
