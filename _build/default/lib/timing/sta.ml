(** Static timing analysis over the per-kind nominal delays of the cell
    vocabulary. DFF outputs and primary inputs launch at time 0; the
    critical path is the latest primary-output / DFF-D arrival. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type report = {
  arrival : float array;  (* per node *)
  critical_path_delay : float;
  critical_output : string;  (* name of the latest endpoint *)
}

(** Arrival times; [delay_of] defaults to the library nominal values and can
    be overridden, e.g. to model process variation for fingerprinting. *)
let arrival_times ?delay_of circuit =
  let delay_of =
    match delay_of with
    | Some f -> f
    | None -> fun _node kind -> Gate.delay kind
  in
  let n = Circuit.node_count circuit in
  let arrival = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff | Gate.Const _ -> arrival.(i) <- 0.0
    | k ->
      let latest =
        Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0.0 nd.Circuit.fanins
      in
      arrival.(i) <- latest +. delay_of i k
  done;
  arrival

let analyze ?delay_of circuit =
  let arrival = arrival_times ?delay_of circuit in
  (* Endpoints: primary outputs and DFF D-inputs. *)
  let endpoints =
    Array.to_list (Array.map (fun (nm, o) -> nm, arrival.(o)) (Circuit.outputs circuit))
    @ Array.to_list
        (Array.map
           (fun dff ->
             let d = (Circuit.fanins circuit dff).(0) in
             Circuit.name circuit dff ^ ".d", arrival.(d))
           (Circuit.dffs circuit))
  in
  let critical_output, critical_path_delay =
    List.fold_left
      (fun (bn, bt) (nm, t) -> if t > bt then (nm, t) else (bn, bt))
      ("<none>", 0.0) endpoints
  in
  { arrival; critical_path_delay; critical_output }

(** Logic depth in gate levels (unit delay model). *)
let depth circuit =
  let n = Circuit.node_count circuit in
  let level = Array.make n 0 in
  let deepest = ref 0 in
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff | Gate.Const _ -> ()
    | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
    | Gate.Xor | Gate.Xnor | Gate.Mux ->
      let deepest_fanin =
        Array.fold_left (fun acc f -> max acc level.(f)) 0 nd.Circuit.fanins
      in
      level.(i) <- deepest_fanin + 1;
      if level.(i) > !deepest then deepest := level.(i)
  done;
  !deepest

(** Per-node delay function with Gaussian process variation of relative
    sigma [sigma]; the substrate for path-delay fingerprinting. *)
let varied_delays rng ~sigma circuit =
  let n = Circuit.node_count circuit in
  let factor =
    Array.init n (fun _ -> Float.max 0.1 (Eda_util.Rng.gaussian_scaled rng ~mean:1.0 ~sigma))
  in
  fun node kind -> factor.(node) *. Gate.delay kind
