lib/timing/event_sim.ml: Array List Netlist
