lib/timing/sta.mli: Eda_util Netlist
