lib/timing/sta.ml: Array Eda_util Float List Netlist
