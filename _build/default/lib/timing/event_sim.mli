(** Event-driven gate-level simulation with transport delays: staggered
    input arrivals and unequal path delays produce transient transitions
    (glitches), the mechanism behind the residual leakage of masked logic
    (Sec. III-E, [55]). *)

type transition = { time : float; node : int; value : bool }

(** Simulate one clock cycle: the circuit settles at [prev_inputs] (DFF
    outputs from [state]), then input k switches to [next_inputs.(k)] at
    [input_arrivals.(k)] (default 0). Returns all transitions in time
    order. [delay_of] overrides the nominal per-kind delays.
    @raise Invalid_argument on an event storm (combinational oscillation —
    impossible for well-formed DAGs). *)
val cycle :
  ?delay_of:(int -> Netlist.Gate.kind -> float) ->
  ?input_arrivals:float array ->
  ?state:bool array ->
  Netlist.Circuit.t ->
  prev_inputs:bool array ->
  next_inputs:bool array ->
  transition list

(** Transition count per node over the cycle. *)
val toggle_counts : Netlist.Circuit.t -> transition list -> int array

(** Nodes with more than one transition — the glitching nets. *)
val glitching_nodes : Netlist.Circuit.t -> transition list -> int list
