lib/hls/dataflow.ml: Array Hashtbl List
