(** Miniature high-level synthesis (Table II, first row): a dataflow graph
    of word-level operations is scheduled (ASAP list scheduling under a
    resource constraint), bound to functional units and registers, and
    elaborated to a gate-level netlist via the generators.

    Security-driven HLS hooks (Sec. III-A):
    - sensitivity labels on operations, so binding can avoid sharing a
      functional unit between secret and public computations (a classic
      architectural side channel);
    - register flushing: secret-holding registers are cleared the cycle
      after last use;
    - allocation of security IP: RNG and PUF blocks requested declaratively
      (the toolkit's [Puf] / [Rng_gen] models stand in for the IP). *)

type op_kind = Add | Xor | And | Mul_dummy  (* Mul modelled as 2-cycle op *)

type sensitivity = Public | Secret

type op = {
  id : int;
  kind : op_kind;
  args : int list;  (* op ids or negative for primary inputs *)
  sensitivity : sensitivity;
}

type graph = { ops : op list; width : int }

let latency = function Add | Xor | And -> 1 | Mul_dummy -> 2

(** ASAP list scheduling with at most [units] operations starting per
    cycle. Returns (op id -> start cycle) and the makespan. *)
let schedule ~units graph =
  let start = Hashtbl.create 16 in
  let unscheduled = ref graph.ops in
  let cycle = ref 0 in
  let makespan = ref 0 in
  while !unscheduled <> [] do
    let can_start op =
      List.for_all
        (fun a ->
          a < 0
          ||
          match Hashtbl.find_opt start a with
          | Some s ->
            let producer = List.find (fun o -> o.id = a) graph.ops in
            s + latency producer.kind <= !cycle
          | None -> false)
        op.args
    in
    let startable, rest = List.partition can_start !unscheduled in
    let rec take k acc = function
      | [] -> List.rev acc, []
      | x :: tl -> if k = 0 then List.rev acc, x :: tl else take (k - 1) (x :: acc) tl
    in
    let starting, deferred = take units [] startable in
    List.iter
      (fun op ->
        Hashtbl.replace start op.id !cycle;
        makespan := max !makespan (!cycle + latency op.kind))
      starting;
    unscheduled := deferred @ rest;
    incr cycle;
    if !cycle > 10_000 then invalid_arg "Hls.schedule: dependency cycle"
  done;
  start, !makespan

(** Binding: assign each op to a functional unit instance. The security-
    aware binder never shares a unit between [Secret] and [Public] ops
    (resource-sharing side channels); the classical binder packs greedily. *)
type binding = (int * int) list  (* op id -> unit id *)

let bind ~security_aware ~units graph (start, _makespan) =
  let unit_busy = Array.make units (-1) in  (* cycle until which busy *)
  let unit_class = Array.make units None in  (* sensitivity it served *)
  let assignments = ref [] in
  let by_start =
    List.sort
      (fun a b -> compare (Hashtbl.find start a.id) (Hashtbl.find start b.id))
      graph.ops
  in
  List.iter
    (fun op ->
      let s = Hashtbl.find start op.id in
      let compatible u =
        unit_busy.(u) <= s
        && (not security_aware
            ||
            match unit_class.(u) with
            | None -> true
            | Some cls -> cls = op.sensitivity)
      in
      let rec find u =
        if u >= units then None else if compatible u then Some u else find (u + 1)
      in
      match find 0 with
      | Some u ->
        unit_busy.(u) <- s + latency op.kind;
        if unit_class.(u) = None then unit_class.(u) <- Some op.sensitivity;
        assignments := (op.id, u) :: !assignments
      | None ->
        (* Over-subscribed: the schedule guaranteed at most [units] starts
           per cycle, but multi-cycle ops can still collide; serialize on
           unit 0 as a fallback (costs accuracy, keeps totality). *)
        assignments := (op.id, 0) :: !assignments)
    by_start;
  (!assignments : binding)

(** Does a binding share any unit across sensitivity classes? (the
    vulnerability the aware binder avoids). *)
let has_cross_class_sharing graph binding =
  let class_of = Hashtbl.create 16 in
  List.iter (fun op -> Hashtbl.replace class_of op.id op.sensitivity) graph.ops;
  let unit_classes = Hashtbl.create 16 in
  List.exists
    (fun (op_id, u) ->
      let cls = Hashtbl.find class_of op_id in
      match Hashtbl.find_opt unit_classes u with
      | None ->
        Hashtbl.replace unit_classes u cls;
        false
      | Some prev -> prev <> cls)
    binding

(** Register lifetime analysis + flush schedule: secret values are cleared
    the cycle after their last consumer starts. Returns (op id, flush
    cycle) for every secret-producing op. *)
let flush_schedule graph (start, makespan) =
  List.filter_map
    (fun op ->
      match op.sensitivity with
      | Public -> None
      | Secret ->
        let last_use =
          List.fold_left
            (fun acc consumer ->
              if List.mem op.id consumer.args then
                max acc (Hashtbl.find start consumer.id)
              else acc)
            (Hashtbl.find start op.id) graph.ops
        in
        Some (op.id, min makespan (last_use + 1)))
    graph.ops

(** Secret-exposure metric: total register-cycles during which secret
    values sit in registers after their last use; flushing drives it to
    zero, the classical flow leaves them until the end of the schedule. *)
let exposure_without_flush graph (start, makespan) =
  List.fold_left
    (fun acc (op_id, flush_at) ->
      ignore op_id;
      acc + (makespan - flush_at))
    0
    (flush_schedule graph (start, makespan))
