(** Split manufacturing: the untrusted foundry sees the FEOL (cells and
    short wires); the trusted facility adds the BEOL (long wires). The
    attacker guesses the hidden connections; the defender lifts wires and
    perturbs placement to push the attack toward random guessing. *)

type connection = { from_node : int; to_node : int; to_pin : int }

type split = {
  placement : Physical.Placement.t;
  visible : connection list;  (** FEOL: readable by the foundry *)
  hidden : connection list;  (** BEOL: must be guessed *)
}

(** Every fanin edge as a pin-accurate connection. *)
val all_connections : Netlist.Circuit.t -> connection list

(** Connections spanning more than [feol_threshold] grid units go to the
    BEOL. *)
val split_by_length : feol_threshold:int -> Physical.Placement.t -> split

(** Wire-lifting defense [53]: additionally hide the given [fraction] of
    visible wires, shortest (most informative) first. *)
val lift_wires : fraction:float -> split -> split

(** Proximity attack: each hidden sink matched to the nearest candidate
    driver (candidates = pins with BEOL via stubs). Returns the
    correct-connection rate. *)
val proximity_attack : split -> float

(** Expected CCR of random guessing over the same candidate pool — the
    ideal-defense target [54]. *)
val random_guess_ccr : split -> float

(** The adversary's end-goal metric: (visible + correctly guessed hidden)
    / all connections. *)
val netlist_recovery_rate : split -> float

(** Total BEOL wirelength (defense cost proxy). *)
val hidden_wirelength : split -> int
