lib/splitmfg/split.ml: Array Eda_util Float List Netlist Physical
