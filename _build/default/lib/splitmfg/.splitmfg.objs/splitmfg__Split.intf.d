lib/splitmfg/split.mli: Netlist Physical
