(** Split manufacturing (Table II, physical-synthesis row; [27], [53],
    [54]): the untrusted foundry fabricates the FEOL (cells and short local
    wires) while a trusted facility adds the BEOL (upper metal, the long
    wires). The attacker sees a "sea of gates with dangling wires" and must
    guess the missing connections.

    Model: after placement, every 2-pin connection longer than
    [feol_threshold] (in grid units) is routed in BEOL and hidden from the
    attacker; shorter ones stay in FEOL and are visible. Wire lifting [53]
    deliberately promotes sensitive short wires into the BEOL. *)

module Circuit = Netlist.Circuit
module Rng = Eda_util.Rng

type connection = { from_node : int; to_node : int; to_pin : int }

type split = {
  placement : Physical.Placement.t;
  visible : connection list;  (* FEOL: the foundry sees these *)
  hidden : connection list;  (* BEOL: to be guessed by the attacker *)
}

(* Every fanin edge of the netlist as a pin-accurate connection. *)
let all_connections circuit =
  let conns = ref [] in
  for i = 0 to Circuit.node_count circuit - 1 do
    Array.iteri
      (fun pin f -> conns := { from_node = f; to_node = i; to_pin = pin } :: !conns)
      (Circuit.fanins circuit i)
  done;
  List.rev !conns

(** Split after placement: connections spanning more than [feol_threshold]
    go to BEOL. *)
let split_by_length ~feol_threshold placement =
  let circuit = placement.Physical.Placement.circuit in
  let visible, hidden =
    List.partition
      (fun conn ->
        Physical.Placement.distance placement conn.from_node conn.to_node
        <= feol_threshold)
      (all_connections circuit)
  in
  { placement; visible; hidden }

(** Wire-lifting defense [53]: additionally hide the [lift] fraction of the
    remaining visible wires, chosen by shortest length first (the most
    informative hints). *)
let lift_wires ~fraction split_design =
  let placement = split_design.placement in
  let sorted =
    List.sort
      (fun a b ->
        compare
          (Physical.Placement.distance placement a.from_node a.to_node)
          (Physical.Placement.distance placement b.from_node b.to_node))
      split_design.visible
  in
  let n_lift =
    int_of_float (fraction *. float_of_int (List.length sorted))
  in
  let rec take k acc rest =
    if k = 0 then List.rev acc, rest
    else match rest with
      | [] -> List.rev acc, []
      | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let lifted, still_visible = take n_lift [] sorted in
  { split_design with visible = still_visible; hidden = lifted @ split_design.hidden }

(** Proximity attack [52]-style. The attacker's decisive FEOL hint is the
    via stubs: only pins with a connection routed into the hidden BEOL
    show a dangling via, so the candidate driver pool is *exactly* the set
    of driver pins with hidden fanout — not the whole netlist. Each hidden
    sink pin is matched to the nearest candidate driver (PPA placement
    keeps truly connected pins close, which is the leak). Returns the
    correct-connection rate (CCR).

    This also explains why the defenses work: wire lifting inflates the
    candidate pool with decoys, and placement perturbation breaks the
    closest-is-connected prior. *)
let proximity_attack split_design =
  let placement = split_design.placement in
  let candidates =
    List.sort_uniq compare (List.map (fun conn -> conn.from_node) split_design.hidden)
  in
  let correct = ref 0 in
  List.iter
    (fun conn ->
      let best = ref (-1) and best_d = ref max_int in
      List.iter
        (fun cand ->
          if cand <> conn.to_node then begin
            let d = Physical.Placement.distance placement cand conn.to_node in
            if d < !best_d then begin
              best := cand;
              best_d := d
            end
          end)
        candidates;
      if !best = conn.from_node then incr correct)
    split_design.hidden;
  if split_design.hidden = [] then 1.0
  else Float.of_int !correct /. Float.of_int (List.length split_design.hidden)

(** Expected CCR of random guessing over the same candidate pool — the
    security target [54]: a defense is ideal when the attacker does no
    better than this. *)
let random_guess_ccr split_design =
  match split_design.hidden with
  | [] -> 1.0
  | _ :: _ ->
    let candidates =
      List.sort_uniq compare (List.map (fun conn -> conn.from_node) split_design.hidden)
    in
    1.0 /. Float.of_int (max 1 (List.length candidates))

(** The adversary's end goal is the complete netlist: every FEOL-visible
    connection comes for free, every hidden one must be guessed. The
    recovery rate — (visible + correctly guessed hidden) / all — is the
    metric under which the defenses compose correctly: a shallow split
    leaves most wires readable (high recovery even with zero guessing),
    wire lifting moves readable wires into the must-guess set, and
    placement perturbation lowers the guessing success itself. *)
let netlist_recovery_rate split_design =
  let nv = List.length split_design.visible in
  let nh = List.length split_design.hidden in
  if nv + nh = 0 then 1.0
  else begin
    let ccr = proximity_attack split_design in
    (Float.of_int nv +. (ccr *. Float.of_int nh)) /. Float.of_int (nv + nh)
  end

(** Overhead metric: extra BEOL wirelength caused by a defense, relative to
    the undefended split. *)
let hidden_wirelength split_design =
  List.fold_left
    (fun acc conn ->
      acc + Physical.Placement.distance split_design.placement conn.from_node conn.to_node)
    0 split_design.hidden
