lib/camo/camouflage.ml: Array Eda_util Float Hashtbl List Locking Netlist Printf
