lib/camo/camouflage.mli: Eda_util Locking Netlist
