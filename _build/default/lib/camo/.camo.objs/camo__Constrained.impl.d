lib/camo/constrained.ml: Array List Logic Netlist Printf
