(** Camouflage-constrained synthesis (Sec. III-B: "synthesis is
    constrained to the Boolean functionalities covered by the
    multi-functional but obfuscated primitives — this is similar to
    regular but constrained synthesis").

    Here the constraint is the candidate set of the camouflaged cell
    ({!Camouflage.candidates}: NAND / NOR / XNOR): the synthesizer may
    only instantiate those primitives, so *every* gate of the result is
    camouflageable. Functions are synthesized from a Quine-McCluskey
    cover mapped into NAND-NAND form (inverters as single-input NANDs via
    input duplication). The measurable cost of the constraint is the area
    overhead against unconstrained synthesis. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

(* NOT via NAND(x, x); AND via NAND + NOT; OR via NAND of NOTs. *)
let nand c a b = Circuit.add_gate c Gate.Nand [ a; b ]
let not_ c a = nand c a a

(* Wide AND from 2-input NANDs (NAND is not associative, so the tree is
   built as repeated NAND + complement). *)
let rec wide_and c = function
  | [] -> invalid_arg "wide_and: empty"
  | [ x ] -> x
  | [ a; b ] -> not_ c (nand c a b)
  | a :: b :: rest -> wide_and c (not_ c (nand c a b) :: rest)

(* Wide OR via De Morgan: OR(xs) = NAND(NOT x1, ..., pairwise). *)
let rec wide_or c = function
  | [] -> invalid_arg "wide_or: empty"
  | [ x ] -> x
  | [ a; b ] -> nand c (not_ c a) (not_ c b)
  | a :: b :: rest -> wide_or c (nand c (not_ c a) (not_ c b) :: rest)

(** Synthesize [tt] using only camouflageable primitives. *)
let synthesize tt =
  let arity = Logic.Truth_table.arity tt in
  let c = Circuit.create () in
  let ins = Array.init arity (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) c) in
  let cover = Logic.Qmc.minimize tt in
  let out =
    match cover with
    | [] ->
      (* Constant false: NAND(x0, x0) gives NOT x0; AND(x0, NOT x0) = 0.
         Without inputs the function is a constant cell. *)
      if arity = 0 then Circuit.add_const c false
      else begin
        let nx = not_ c ins.(0) in
        not_ c (nand c ins.(0) nx)
      end
    | _ :: _ ->
      let product_terms =
        List.map
          (fun cube ->
            let literals =
              List.filter_map
                (fun i ->
                  match cube.(i) with
                  | Logic.Cube.Pos -> Some ins.(i)
                  | Logic.Cube.Neg -> Some (not_ c ins.(i))
                  | Logic.Cube.Dc -> None)
                (List.init arity (fun i -> i))
            in
            match literals with
            | [] ->
              (* Tautological cube: constant true = NAND(x, NOT x). *)
              nand c ins.(0) (not_ c ins.(0))
            | _ :: _ -> wide_and c literals)
          cover
      in
      wide_or c product_terms
  in
  Circuit.set_output c "f" out;
  c

(** Does the circuit use only the camouflageable candidate set? *)
let fully_camouflageable c =
  let ok = ref true in
  for i = 0 to Circuit.node_count c - 1 do
    match Circuit.kind c i with
    | Gate.Input | Gate.Const _ -> ()
    | Gate.Nand | Gate.Nor | Gate.Xnor -> ()
    | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Xor | Gate.Mux | Gate.Dff ->
      ok := false
  done;
  !ok

(** Area overhead of the constraint vs. unconstrained (mux-tree) synthesis
    of the same function. *)
let constraint_overhead tt =
  let constrained = synthesize tt in
  let unconstrained = Netlist.Generators.of_truth_table tt in
  (Circuit.stats constrained).Circuit.area /. (Circuit.stats unconstrained).Circuit.area
