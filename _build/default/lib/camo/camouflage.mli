(** IC camouflaging [23]: selected cells replaced by look-alike primitives
    (NAND / NOR / XNOR) whose layout does not reveal the function.
    De-camouflaging reduces to the SAT attack on locking. *)

(** The ambiguous cell's candidate functions, in configuration order. *)
val candidates : Netlist.Gate.kind array

type camouflaged = {
  circuit : Netlist.Circuit.t;  (** the fab view (true functions) *)
  ambiguous : (int * int) list;  (** node id, index into [candidates] *)
}

(** Camouflage up to [cells] randomly selected NAND/NOR/XNOR gates. *)
val apply : Eda_util.Rng.t -> cells:int -> Netlist.Circuit.t -> camouflaged

(** The attacker's imaging result as a locked circuit: 2 key bits select
    each ambiguous cell's function. *)
val to_locked : camouflaged -> Locking.Lock.locked

(** Area factor when every ambiguous cell must budget for its largest
    candidate (the constrained-synthesis cost). *)
val area_overhead : camouflaged -> float

(** Oracle-guided de-camouflaging; (DIPs used, functions recovered). *)
val decamouflage : ?max_iterations:int -> camouflaged -> int * bool
