(** IC camouflaging [23] (Table II, logic-synthesis row): selected cells
    are replaced by look-alike primitives whose layout does not reveal
    which of NAND / NOR / XNOR they implement. A malicious end-user imaging
    the chip must consider every consistent assignment.

    De-camouflaging is the dual of the SAT attack on locking: model each
    ambiguous cell with two configuration bits (a 4-way mux over candidate
    functions), then run the oracle-guided DIP loop. The camouflaged
    netlist is therefore *compiled to* a locked netlist — the reduction the
    literature uses — and attacked with [Locking.Sat_attack]. Here we keep
    the standalone representation plus the reduction. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

(* The candidate set of an ambiguous cell, in configuration order. *)
let candidates = [| Gate.Nand; Gate.Nor; Gate.Xnor |]

type camouflaged = {
  circuit : Circuit.t;  (* with the true cell functions (the fab view) *)
  ambiguous : (int * int) list;  (* node id, index into [candidates] *)
}

(** Camouflage [cells] randomly selected 2-input NAND/NOR/XNOR gates. *)
let apply rng ~cells source =
  let eligible =
    List.filter
      (fun i ->
        match Circuit.kind source i with
        | Gate.Nand | Gate.Nor | Gate.Xnor -> true
        | Gate.Input | Gate.Const _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or
        | Gate.Xor | Gate.Mux | Gate.Dff -> false)
      (List.init (Circuit.node_count source) (fun i -> i))
  in
  let cells = min cells (List.length eligible) in
  let chosen = Rng.sample rng cells (List.length eligible) in
  let arr = Array.of_list eligible in
  let ambiguous =
    Array.to_list
      (Array.map
         (fun idx ->
           let node = arr.(idx) in
           let true_kind = Circuit.kind source node in
           let config =
             match true_kind with
             | Gate.Nand -> 0
             | Gate.Nor -> 1
             | Gate.Xnor -> 2
             | Gate.Input | Gate.Const _ | Gate.Buf | Gate.Not | Gate.And
             | Gate.Or | Gate.Xor | Gate.Mux | Gate.Dff -> assert false
           in
           node, config)
         chosen)
  in
  { circuit = Circuit.copy source; ambiguous }

(** What the attacker's imaging recovers: the netlist with every ambiguous
    cell's function unknown, encoded as a locked circuit whose key bits
    select the cell function (2 bits per cell, one-hot-ish mux). *)
let to_locked camo =
  let src = camo.circuit in
  let n = Circuit.node_count src in
  let ambiguous = Hashtbl.create 16 in
  List.iteri (fun k (node, _) -> Hashtbl.replace ambiguous node k) camo.ambiguous;
  let num_cells = List.length camo.ambiguous in
  let out = Circuit.create () in
  let key_inputs =
    Array.init (2 * num_cells) (fun k -> Circuit.add_input ~name:(Printf.sprintf "key%d" k) out)
  in
  let data_inputs = ref [] in
  let remap = Array.make n (-1) in
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name src i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node src i in
    let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
    remap.(i) <-
      (match Hashtbl.find_opt ambiguous i with
       | None ->
         let id = Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i) in
         if nd.Circuit.kind = Gate.Input then data_inputs := id :: !data_inputs;
         id
       | Some cell_idx ->
         (* Key bits (2k, 2k+1) select among candidates via mux tree. *)
         let a = fanins.(0) and b = fanins.(1) in
         let nand_v = Circuit.add_node_raw out Gate.Nand [| a; b |] "" in
         let nor_v = Circuit.add_node_raw out Gate.Nor [| a; b |] "" in
         let xnor_v = Circuit.add_node_raw out Gate.Xnor [| a; b |] "" in
         let k0 = key_inputs.(2 * cell_idx) and k1 = key_inputs.((2 * cell_idx) + 1) in
         (* config 0 -> nand, 1 -> nor, 2 or 3 -> xnor. *)
         let low = Circuit.add_node_raw out Gate.Mux [| k0; nand_v; nor_v |] "" in
         Circuit.add_node_raw out Gate.Mux [| k1; low; xnor_v |] (copy_name i))
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs src);
  let correct_key = Array.make (2 * num_cells) false in
  List.iteri
    (fun k (_, config) ->
      correct_key.(2 * k) <- config = 1;
      correct_key.((2 * k) + 1) <- config = 2)
    camo.ambiguous;
  { Locking.Lock.circuit = out;
    key_inputs;
    data_inputs = Array.of_list (List.rev !data_inputs);
    correct_key }

(** Constrained synthesis check (Sec. III-B: camouflaging is "regular but
    constrained synthesis"): area overhead of a camouflaged design, where
    every ambiguous cell costs the area of its largest candidate. *)
let area_overhead camo =
  let base = (Circuit.stats camo.circuit).Circuit.area in
  let worst_candidate =
    Array.fold_left (fun acc k -> Float.max acc (Gate.area k)) 0.0 candidates
  in
  let extra =
    List.fold_left
      (fun acc (node, _) -> acc +. (worst_candidate -. Gate.area (Circuit.kind camo.circuit node)))
      0.0 camo.ambiguous
  in
  (base +. extra) /. base

(** Oracle-guided de-camouflaging via the SAT attack; returns the number of
    DIPs and whether the recovered functions are equivalent. *)
let decamouflage ?(max_iterations = 256) camo =
  let locked = to_locked camo in
  let oracle = Locking.Sat_attack.oracle_of_circuit camo.circuit in
  let result = Locking.Sat_attack.run ~max_iterations ~oracle locked in
  let success = Locking.Sat_attack.recovered_key_correct locked ~original:camo.circuit result in
  result.Locking.Sat_attack.iterations, success
