lib/synth/basis.ml: Array Hashtbl Netlist
