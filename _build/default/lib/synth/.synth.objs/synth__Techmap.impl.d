lib/synth/techmap.ml: Array Hashtbl Netlist Rewrite
