lib/synth/rewrite.ml: Array Hashtbl Netlist
