lib/synth/xor_reassoc.mli: Netlist
