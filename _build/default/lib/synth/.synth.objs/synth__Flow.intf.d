lib/synth/flow.mli: Netlist
