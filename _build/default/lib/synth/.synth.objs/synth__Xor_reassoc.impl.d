lib/synth/xor_reassoc.ml: Array Hashtbl List Netlist Rewrite
