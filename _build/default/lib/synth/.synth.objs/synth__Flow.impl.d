lib/synth/flow.ml: Netlist Rewrite Timing Xor_reassoc
