(** Local logic rewriting: constant propagation, algebraic identities and
    structural hashing (common-subexpression elimination).

    Every pass maps an input circuit to a fresh, functionally equivalent
    circuit, expressed as an old-node -> new-node substitution built in one
    topological sweep. Passes accept a [protect] predicate: nodes for which
    it returns true are copied verbatim and never merged, simplified or
    re-expressed — the hook through which security-aware synthesis keeps its
    hands off masked logic (see [Xor_reassoc] for why that matters). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

let no_protection _ = false

(* Rebuild [c] mapping each node through [rewrite_node], which receives the
   partially built output circuit and the old->new map and returns the new
   id for the node. *)
let rebuild c rewrite_node =
  let out = Circuit.create () in
  let n = Circuit.node_count c in
  let remap = Array.make n (-1) in
  (* Names can collide after merging; keep the first, generate for later. *)
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name c i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    remap.(i) <- rewrite_node out remap copy_name i
  done;
  (* DFF D-inputs were deferred (forward references). *)
  for i = 0 to n - 1 do
    if Circuit.kind c i = Gate.Dff then begin
      let d = (Circuit.fanins c i).(0) in
      Circuit.connect_dff out remap.(i) ~d:remap.(d)
    end
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs c);
  out

(* Copy a node verbatim (with remapped fanins). *)
let copy_node c out remap copy_name i =
  let nd = Circuit.node c i in
  let fanins =
    if nd.Circuit.kind = Gate.Dff then [| 0 |]
    else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
  in
  Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i)

(** Constant propagation and algebraic simplification:
    AND(x,0)=0, AND(x,1)=x, XOR(x,0)=x, XOR(x,x)=0, NOT(NOT x)=x, etc. *)
let constant_propagation ?(protect = no_protection) c =
  (* Protection is by net name so that it survives the id renumbering a
     pass pipeline performs; protected nodes keep their names verbatim. *)
  let protect i = protect (Circuit.name c i) in
  (* Track, for each new node, whether it is a known constant, and expose
     double negations. *)
  let const_of = Hashtbl.create 64 in  (* new id -> bool *)
  let not_of = Hashtbl.create 64 in  (* new id -> new id it negates *)
  let constant out b =
    (* Reuse a single constant node per polarity. *)
    match
      Hashtbl.fold
        (fun id v acc -> if v = b && acc = None then Some id else acc)
        const_of None
    with
    | Some id -> id
    | None ->
      let id = Circuit.add_const out b in
      Hashtbl.replace const_of id b;
      id
  in
  let rewrite out remap copy_name i =
    let nd = Circuit.node c i in
    let verbatim () = copy_node c out remap copy_name i in
    if protect i then verbatim ()
    else begin
      let f k = remap.(nd.Circuit.fanins.(k)) in
      let cst id = Hashtbl.find_opt const_of id in
      let fresh kind fanins =
        let id = Circuit.add_node_raw out kind (Array.of_list fanins) (copy_name i) in
        (match kind with
         | Gate.Const b -> Hashtbl.replace const_of id b
         | Gate.Not -> (match fanins with [ a ] -> Hashtbl.replace not_of id a | _ -> ())
         | Gate.Input | Gate.Buf | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
         | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Dff -> ());
        id
      in
      let negate a =
        (* NOT(NOT x) = x. *)
        match Hashtbl.find_opt not_of a with
        | Some inner -> inner
        | None ->
          (match cst a with
           | Some b -> constant out (not b)
           | None -> fresh Gate.Not [ a ])
      in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> verbatim ()
      | Gate.Const b -> constant out b
      | Gate.Buf -> f 0
      | Gate.Not -> negate (f 0)
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
        let a = f 0 and b = f 1 in
        let invert_if_needed ~inverted id = if inverted then negate id else id in
        let binop base ~inverted =
          (* base is And / Or / Xor; inverted adds an output negation. *)
          match base, cst a, cst b with
          | Gate.And, Some false, _ | Gate.And, _, Some false ->
            constant out inverted
          | Gate.And, Some true, _ -> invert_if_needed ~inverted b
          | Gate.And, _, Some true -> invert_if_needed ~inverted a
          | Gate.And, None, None ->
            if a = b then invert_if_needed ~inverted a
            else fresh (if inverted then Gate.Nand else Gate.And) [ a; b ]
          | Gate.Or, Some true, _ | Gate.Or, _, Some true ->
            constant out (not inverted)
          | Gate.Or, Some false, _ -> invert_if_needed ~inverted b
          | Gate.Or, _, Some false -> invert_if_needed ~inverted a
          | Gate.Or, None, None ->
            if a = b then invert_if_needed ~inverted a
            else fresh (if inverted then Gate.Nor else Gate.Or) [ a; b ]
          | Gate.Xor, Some ca, Some cb -> constant out (inverted <> (ca <> cb))
          | Gate.Xor, Some false, None -> invert_if_needed ~inverted b
          | Gate.Xor, None, Some false -> invert_if_needed ~inverted a
          | Gate.Xor, Some true, None -> invert_if_needed ~inverted:(not inverted) b
          | Gate.Xor, None, Some true -> invert_if_needed ~inverted:(not inverted) a
          | Gate.Xor, None, None ->
            if a = b then constant out inverted
            else fresh (if inverted then Gate.Xnor else Gate.Xor) [ a; b ]
          | (Gate.Input | Gate.Const _ | Gate.Buf | Gate.Not | Gate.Nand
            | Gate.Nor | Gate.Xnor | Gate.Mux | Gate.Dff), _, _ ->
            assert false
        in
        (match nd.Circuit.kind with
         | Gate.And -> binop Gate.And ~inverted:false
         | Gate.Nand -> binop Gate.And ~inverted:true
         | Gate.Or -> binop Gate.Or ~inverted:false
         | Gate.Nor -> binop Gate.Or ~inverted:true
         | Gate.Xor -> binop Gate.Xor ~inverted:false
         | Gate.Xnor -> binop Gate.Xor ~inverted:true
         | Gate.Input | Gate.Const _ | Gate.Buf | Gate.Not | Gate.Mux | Gate.Dff ->
           assert false)
      | Gate.Mux ->
        let s = f 0 and a = f 1 and b = f 2 in
        (match cst s with
         | Some false -> a
         | Some true -> b
         | None ->
           if a = b then a
           else
             (match cst a, cst b with
              | Some false, Some true -> s
              | Some true, Some false -> negate s
              | Some false, None -> fresh Gate.And [ s; b ]
              | None, Some true -> fresh Gate.Or [ s; a ]
              | _, _ -> fresh Gate.Mux [ s; a; b ]))
    end
  in
  let out = rebuild c rewrite in
  fst (Circuit.sweep out)

(** Structural hashing: nodes with the same kind and (normalized) fanins
    collapse to one. Commutative kinds sort their fanins. *)
let strash ?(protect = no_protection) c =
  let protect i = protect (Circuit.name c i) in
  let table = Hashtbl.create 256 in  (* (kind, fanins) -> new id *)
  let rewrite out remap copy_name i =
    let nd = Circuit.node c i in
    if protect i then copy_node c out remap copy_name i
    else begin
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff | Gate.Const _ -> copy_node c out remap copy_name i
      | k ->
        let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
        let normalized =
          match k with
          | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
            let s = Array.copy fanins in
            Array.sort compare s;
            s
          | Gate.Buf | Gate.Not | Gate.Mux -> fanins
          | Gate.Input | Gate.Dff | Gate.Const _ -> assert false
        in
        let key = (k, normalized) in
        (match Hashtbl.find_opt table key with
         | Some id -> id
         | None ->
           let id = Circuit.add_node_raw out k fanins (copy_name i) in
           Hashtbl.replace table key id;
           id)
    end
  in
  let out = rebuild c rewrite in
  fst (Circuit.sweep out)

(** Area after a pass pipeline; convenience for reporting. *)
let area c = (Circuit.stats c).Circuit.area
