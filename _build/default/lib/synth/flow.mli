(** Synthesis pass pipelines and the PPA cost model. [optimize] is the
    classical, security-oblivious recipe (constant propagation, structural
    hashing, XOR re-association, iterated); [optimize_secure] runs the
    same passes behind a [protect] fence. *)

type ppa = { area : float; delay_ps : float; gate_count : int; power_proxy : float }

(** Static PPA estimate: cell areas, STA delay, 0.5-activity power proxy. *)
val ppa : Netlist.Circuit.t -> ppa

(** The classical flow; [reassoc:false] skips the XOR re-association. *)
val optimize : ?reassoc:bool -> Netlist.Circuit.t -> Netlist.Circuit.t

(** Security-aware variant: nodes whose name satisfies [protect] are copied
    verbatim — never merged, simplified or re-associated. *)
val optimize_secure : protect:(string -> bool) -> Netlist.Circuit.t -> Netlist.Circuit.t
