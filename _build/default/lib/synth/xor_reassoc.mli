(** XOR re-association — the paper's motivational example (Fig. 2) of a
    classical, security-oblivious optimization. Collects maximal XOR/XNOR
    trees and rebuilds them; functionally a no-op, catastrophic for masked
    logic whose security is the accumulation *order*. *)

type strategy =
  | Factoring_friendly
      (** sort leaves so shared-fanin products group together — the
          transformation that creates the Fig. 2 leak; rebuilt as a
          left-to-right chain *)
  | Balanced  (** balanced tree for timing; leaf order preserved *)

(** Re-associate every maximal unprotected XOR tree. [protect] (by net
    name) fences off masked cones — the security-aware mode. *)
val run :
  ?protect:(string -> bool) -> ?strategy:strategy -> Netlist.Circuit.t -> Netlist.Circuit.t
