(** XOR re-association — the paper's motivational example of a classical,
    security-oblivious optimization (Fig. 2).

    XOR is associative and commutative, so a synthesis tool is free to
    regroup any multi-input XOR tree to improve timing (balance the tree) or
    area (place structurally similar leaves next to each other so that
    factoring like a3*b1 ^ a3*b2 ^ a3*b3 = a3*(b1^b2^b3) becomes available).
    Functional correctness is preserved by construction.

    For a private circuit (ISW masking) the regrouping is catastrophic: the
    scheme's security rests on the *order* in which shares and randomness
    are accumulated; regrouping can create an intermediate wire that equals
    an unmasked secret-dependent value. This pass faithfully implements the
    paper's "factoring-friendly" leaf ordering: leaves of each maximal XOR
    tree are sorted so that leaves sharing a fanin become adjacent, then the
    chain is rebuilt left-to-right — exactly the transformation the paper
    warns about. Running it with [protect] covering the masked cone models a
    security-aware tool that honours order barriers. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

(* Collect the leaves of the maximal XOR/XNOR tree rooted at [root].
   Returns leaves (non-XOR fanin cones) and the output inversion parity.
   [stop] limits expansion: nodes with external fanout other than their XOR
   parent must remain (they are observable), so we only absorb single-fanout
   internal XOR nodes. *)
let collect_tree c ~fanout_count ~protect root =
  let leaves = ref [] in
  let parity = ref false in
  let rec go node ~is_root =
    let nd = Circuit.node c node in
    let absorbable =
      (not (protect node))
      && (is_root || fanout_count.(node) = 1)
      && (match nd.Circuit.kind with Gate.Xor | Gate.Xnor -> true | _ -> false)
    in
    if absorbable then begin
      (match nd.Circuit.kind with
       | Gate.Xnor -> parity := not !parity
       | _ -> ());
      Array.iter (fun f -> go f ~is_root:false) nd.Circuit.fanins
    end
    else leaves := node :: !leaves
  in
  go root ~is_root:true;
  List.rev !leaves, !parity

(* Sort key grouping structurally similar leaves: leaves that are 2-input
   gates sharing their smallest fanin id sort together, which is what makes
   shared-factor extraction (and the Fig. 2 leak) happen. *)
let leaf_key c leaf =
  let nd = Circuit.node c leaf in
  match nd.Circuit.kind with
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
    let a = min nd.Circuit.fanins.(0) nd.Circuit.fanins.(1) in
    (0, a, leaf)
  | Gate.Input -> (2, leaf, leaf)
  | Gate.Const _ | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Dff ->
    (1, leaf, leaf)

type strategy =
  | Factoring_friendly  (* sort leaves to group shared-fanin products *)
  | Balanced  (* balanced tree for timing; leaf order preserved *)

(** Apply the re-association to every maximal XOR tree root. *)
let run ?(protect = Rewrite.no_protection) ?(strategy = Factoring_friendly) c =
  let protect i = protect (Circuit.name c i) in
  let n = Circuit.node_count c in
  let fanouts = Circuit.fanouts c in
  let fanout_count = Array.map List.length fanouts in
  (* Mark outputs and DFF D-inputs as extra fanout so observable XORs stay
     put as roots. *)
  Array.iter
    (fun (_, o) -> fanout_count.(o) <- fanout_count.(o) + 1)
    (Circuit.outputs c);
  Array.iter
    (fun dff ->
      let d = (Circuit.fanins c dff).(0) in
      fanout_count.(d) <- fanout_count.(d) + 1)
    (Circuit.dffs c);
  (* Roots: XOR/XNOR nodes that are not absorbed by an XOR parent, i.e.
     with some non-XOR consumer or fanout <> 1, and unprotected. *)
  let is_xor i =
    match Circuit.kind c i with Gate.Xor | Gate.Xnor -> true | _ -> false
  in
  let is_root = Array.make n false in
  for i = 0 to n - 1 do
    if is_xor i && not (protect i) then begin
      let absorbed =
        fanout_count.(i) = 1
        && (match fanouts.(i) with
            | [ parent ] -> is_xor parent && not (protect parent)
            | [] | _ :: _ :: _ -> false)
      in
      is_root.(i) <- not absorbed
    end
  done;
  let out = Circuit.create () in
  let remap = Array.make n (-1) in
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name c i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node c i in
    if is_root.(i) then begin
      let leaves, parity = collect_tree c ~fanout_count ~protect i in
      let leaves =
        match strategy with
        | Factoring_friendly ->
          List.stable_sort (fun a b -> compare (leaf_key c a) (leaf_key c b)) leaves
        | Balanced -> leaves
      in
      let mapped = List.map (fun l -> remap.(l)) leaves in
      List.iter (fun m -> assert (m >= 0)) mapped;
      let tree =
        match strategy with
        | Factoring_friendly -> Circuit.reduce_chain out Gate.Xor mapped
        | Balanced -> Circuit.reduce out Gate.Xor mapped
      in
      let final =
        if parity then Circuit.add_node_raw out Gate.Not [| tree |] (copy_name i)
        else if List.length leaves = 1 then
          (* Degenerate: single leaf; keep a buffer to carry the name. *)
          Circuit.add_node_raw out Gate.Buf [| tree |] (copy_name i)
        else begin
          (* Give the tree root the original name if still free. *)
          ignore (copy_name i);
          tree
        end
      in
      remap.(i) <- final
    end
    else if is_xor i && not (protect i) then
      (* Absorbed into a root built later; remap lazily via its leaves.
         Mark with a placeholder; roots never read absorbed nodes. *)
      remap.(i) <- -2
    else begin
      let fanins =
        if nd.Circuit.kind = Gate.Dff then [| 0 |]
        else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
      in
      Array.iter (fun f -> assert (f >= 0)) fanins;
      remap.(i) <- Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i)
    end
  done;
  for i = 0 to n - 1 do
    if Circuit.kind c i = Gate.Dff then
      Circuit.connect_dff out remap.(i) ~d:remap.((Circuit.fanins c i).(0))
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs c);
  fst (Circuit.sweep out)
