(** Conversion to the AND / XOR / NOT basis. Masking transforms (ISW
    private circuits) are defined over this basis; every other cell is
    rewritten by Boolean identities before masking. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

let to_and_xor_not c =
  let out = Circuit.create () in
  let n = Circuit.node_count c in
  let remap = Array.make n (-1) in
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name c i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node c i in
    let f k = remap.(nd.Circuit.fanins.(k)) in
    let add kind fanins = Circuit.add_node_raw out kind (Array.of_list fanins) "" in
    let named kind fanins = Circuit.add_node_raw out kind (Array.of_list fanins) (copy_name i) in
    remap.(i) <-
      (match nd.Circuit.kind with
       | Gate.Input -> Circuit.add_node_raw out Gate.Input [||] (copy_name i)
       | Gate.Const b -> Circuit.add_node_raw out (Gate.Const b) [||] (copy_name i)
       | Gate.Dff -> Circuit.add_node_raw out Gate.Dff [| 0 |] (copy_name i)
       | Gate.Buf -> f 0
       | Gate.Not -> named Gate.Not [ f 0 ]
       | Gate.And -> named Gate.And [ f 0; f 1 ]
       | Gate.Xor -> named Gate.Xor [ f 0; f 1 ]
       | Gate.Nand -> named Gate.Not [ add Gate.And [ f 0; f 1 ] ]
       | Gate.Or ->
         (* a | b = !( !a & !b ) *)
         let na = add Gate.Not [ f 0 ] and nb = add Gate.Not [ f 1 ] in
         named Gate.Not [ add Gate.And [ na; nb ] ]
       | Gate.Nor ->
         let na = add Gate.Not [ f 0 ] and nb = add Gate.Not [ f 1 ] in
         named Gate.And [ na; nb ]
       | Gate.Xnor -> named Gate.Not [ add Gate.Xor [ f 0; f 1 ] ]
       | Gate.Mux ->
         (* s ? b : a = a xor (s & (a xor b)) *)
         let axb = add Gate.Xor [ f 1; f 2 ] in
         let gated = add Gate.And [ f 0; axb ] in
         named Gate.Xor [ f 1; gated ])
  done;
  for i = 0 to n - 1 do
    if Circuit.kind c i = Gate.Dff then
      Circuit.connect_dff out remap.(i) ~d:remap.((Circuit.fanins c i).(0))
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs c);
  out

(** True when the circuit uses only the AND/XOR/NOT basis (plus IO cells). *)
let in_basis c =
  let ok = ref true in
  for i = 0 to Circuit.node_count c - 1 do
    match Circuit.kind c i with
    | Gate.And | Gate.Xor | Gate.Not | Gate.Input | Gate.Const _ | Gate.Dff -> ()
    | Gate.Buf | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xnor | Gate.Mux -> ok := false
  done;
  !ok
