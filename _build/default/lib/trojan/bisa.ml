(** BISA-style built-in self-authentication [20] (Table II, high-level
    synthesis row): fill all spare placement sites with interconnected
    functional filler cells forming a checkable circuit. A fab-time Trojan
    needs empty space; with BISA fill, inserting one forces removing filler
    cells, which the self-test detects.

    Model: the layout has [total_sites]; the design occupies some; BISA
    fills the rest with a known parity network. A Trojan of [cells] cells
    displaces that many filler cells. Detection = the filler self-test
    fails (any displaced cell breaks the parity chain). *)

module Rng = Eda_util.Rng

type layout = {
  total_sites : int;
  design_cells : int;
  filler_cells : int;
  filler_signature : int;  (* golden checksum of the filler network *)
}

let fill ~total_sites ~design_cells =
  assert (design_cells <= total_sites);
  let filler = total_sites - design_cells in
  (* Deterministic signature: parity structure over filler indices. *)
  let signature = Hashtbl.hash (filler, design_cells, total_sites) land 0xFFFF in
  { total_sites; design_cells; filler_cells = filler; filler_signature = signature }

(** A Trojan needing [cells] sites must displace filler; the self-test
    recomputes the signature over surviving fillers. *)
let insert_trojan layout ~cells =
  if cells > layout.filler_cells then None  (* no room even by displacement *)
  else begin
    Some
      { layout with
        filler_cells = layout.filler_cells - cells;
        (* signature recomputed over fewer cells differs *)
        filler_signature =
          Hashtbl.hash (layout.filler_cells - cells, layout.design_cells, layout.total_sites)
          land 0xFFFF }
  end

let self_test ~golden layout = layout.filler_signature = golden.filler_signature

(** Without BISA: the Trojan uses genuinely empty space, nothing detects
    it; with BISA: any nonzero displacement flips the signature. Returns
    detection probability over [trials] random Trojan sizes. *)
let detection_rate rng ~golden ~max_trojan_cells ~trials =
  let detected = ref 0 in
  for _ = 1 to trials do
    let cells = 1 + Rng.int rng max_trojan_cells in
    match insert_trojan golden ~cells with
    | None -> incr detected  (* insertion impossible: counts as defended *)
    | Some modified -> if not (self_test ~golden modified) then incr detected
  done;
  Float.of_int !detected /. Float.of_int trials
