lib/trojan/detect.ml: Array Eda_util Float Hashtbl Insert List Netlist Power Timing
