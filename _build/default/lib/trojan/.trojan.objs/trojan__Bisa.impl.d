lib/trojan/bisa.ml: Eda_util Float Hashtbl
