lib/trojan/insert.ml: Array Eda_util Float Int64 List Netlist Sat Stdlib
