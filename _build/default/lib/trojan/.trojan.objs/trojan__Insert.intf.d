lib/trojan/insert.mli: Eda_util Netlist
