(** Hardware Trojan insertion: a stealthy trigger (conjunction of rare
    internal signal values, SAT-checked to be jointly satisfiable) and a
    payload — output flipping (integrity Trojan) or a parasitic load
    (side-channel/reliability Trojan). *)

type trojan = {
  infected : Netlist.Circuit.t;
  trigger_nets : (int * bool) list;
      (** (net, required value) conditions, ids in the clean circuit *)
  trigger_node : int;  (** trigger output in the infected circuit *)
  victim_output : int;  (** index of the sabotaged output *)
  payload : payload;
}

and payload =
  | Flip_output  (** victim output inverted while triggered *)
  | Leak_parasitic  (** extra switching load, no functional change *)

(** The [count] rarest (net, polarity) conditions under random stimuli,
    excluding inputs and constants. *)
val rare_conditions :
  Eda_util.Rng.t -> patterns:int -> count:int -> Netlist.Circuit.t -> (int * bool) list

(** Insert a Trojan with a [trigger_width]-condition AND trigger chosen to
    minimize joint activation probability while remaining satisfiable. The
    infected circuit keeps the clean interface (parasitic payloads add one
    pseudo-output to stay live). *)
val insert :
  Eda_util.Rng.t ->
  ?payload:payload ->
  trigger_width:int ->
  patterns:int ->
  Netlist.Circuit.t ->
  trojan

(** Trigger activation probability under random stimuli (ground truth). *)
val trigger_probability : Eda_util.Rng.t -> trojan -> patterns:int -> float

(** Does [inputs] expose the Trojan (clean and infected outputs differ)? *)
val exposed_by : Netlist.Circuit.t -> trojan -> bool array -> bool
