(** Correlation power analysis (Brier et al. [1]) against the first-round
    AES byte datapath: the attacker records one power sample per encryption
    of a known random plaintext byte and correlates it, for each of the 256
    key guesses, with the Hamming weight of the predicted S-box output.
    The correct key yields the (absolutely) largest correlation. *)

module Stats = Eda_util.Stats
module Rng = Eda_util.Rng

type attack_result = {
  best_guess : int;
  correlations : float array;  (* per key guess *)
  correct_rank : int option;  (* rank of [correct_key] if provided *)
}

(** Rank guesses by |rho| descending; rank 0 = best. *)
let rank_of correlations key =
  let scored = Array.mapi (fun g r -> (Float.abs r, g)) correlations in
  Array.sort (fun (a, _) (b, _) -> compare b a) scored;
  let rec find i =
    if i >= Array.length scored then None
    else begin
      let _, g = scored.(i) in
      if g = key then Some i else find (i + 1)
    end
  in
  find 0

(** Attack from observed (plaintext byte, power sample) pairs. *)
let attack ?correct_key observations =
  let n = List.length observations in
  let plaintexts = Array.make n 0 and samples = Array.make n 0.0 in
  List.iteri
    (fun i (p, s) ->
      plaintexts.(i) <- p;
      samples.(i) <- s)
    observations;
  let correlations =
    Array.init 256 (fun guess ->
        let model =
          Array.map
            (fun p -> Float.of_int (Stats.hamming_weight ~bits:8 Crypto.Aes.sbox.(p lxor guess)))
            plaintexts
        in
        Stats.pearson model samples)
  in
  let best_guess = Stats.argmax (Array.map Float.abs correlations) in
  { best_guess;
    correlations;
    correct_rank = Option.map (fun k -> Option.value ~default:255 (rank_of correlations k)) correct_key }

(** End-to-end campaign against a circuit with inputs p0..p7, k0..k7 (the
    [Crypto.Sbox_circuit.aes_round_datapath] interface): simulate [traces]
    encryptions with random plaintexts under [key]. The default leakage is
    the settled-state Hamming weight (a precharged/dynamic-logic model,
    which matches the attack's HW hypothesis); [`Switching] uses the
    glitch-aware total switching energy between consecutive encryptions —
    noisier for the attacker, hence needing more traces. *)
let campaign ?(leakage = `Hamming_weight) rng circuit ~key ~traces ~noise_sigma =
  let observations = ref [] in
  let prev = ref 0 in
  for _ = 1 to traces do
    let p = Rng.int rng 256 in
    let next_inputs =
      Array.append (Crypto.Sbox_circuit.byte_to_bits p) (Crypto.Sbox_circuit.byte_to_bits key)
    in
    let sample =
      match leakage with
      | `Hamming_weight ->
        Power.Model.hamming_weight_sample rng circuit ~noise_sigma ~inputs:next_inputs
      | `Switching ->
        let prev_inputs =
          Array.append (Crypto.Sbox_circuit.byte_to_bits !prev)
            (Crypto.Sbox_circuit.byte_to_bits key)
        in
        Power.Model.total_energy rng circuit ~noise_sigma ~prev_inputs ~next_inputs
    in
    observations := (p, sample) :: !observations;
    prev := p
  done;
  attack ~correct_key:key !observations

(** Success-rate curve: fraction of successful key recoveries as a function
    of trace count; the measurements-to-disclosure shape. *)
let success_rate_curve ?leakage rng circuit ~key ~trace_counts ~trials ~noise_sigma =
  List.map
    (fun traces ->
      let successes = ref 0 in
      for _ = 1 to trials do
        let result = campaign ?leakage rng circuit ~key ~traces ~noise_sigma in
        if result.best_guess = key then incr successes
      done;
      traces, Stats.success_rate !successes trials)
    trace_counts
