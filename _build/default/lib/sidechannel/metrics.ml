(** Side-channel security metrics beyond the raw t statistic: signal-to-
    noise ratio and a measurements-to-disclosure estimate, the quantities a
    security-aware EDA flow would report next to area and delay (Sec. IV). *)

module Stats = Eda_util.Stats

(** SNR of a leakage point: Var(signal) / Var(noise), estimated from
    samples grouped by the intermediate value [classify] assigns. *)
let snr ~classify observations =
  (* Group samples by class. *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (x, sample) ->
      let cls = classify x in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups cls) in
      Hashtbl.replace groups cls (sample :: cur))
    observations;
  let class_means = ref [] in
  let noise_vars = ref [] in
  Hashtbl.iter
    (fun _cls samples ->
      let arr = Array.of_list samples in
      if Array.length arr >= 2 then begin
        class_means := Stats.mean arr :: !class_means;
        noise_vars := Stats.variance arr :: !noise_vars
      end)
    groups;
  match !class_means with
  | [] | [ _ ] -> 0.0
  | _ :: _ :: _ ->
    (* Population variance across class means: the classes are the full
       signal alphabet, not a sample from it. *)
    let means = Array.of_list !class_means in
    let n = Float.of_int (Array.length means) in
    let signal_var = Stats.variance means *. ((n -. 1.0) /. n) in
    let noise_var = Stats.mean (Array.of_list !noise_vars) in
    if noise_var <= 0.0 then Float.infinity else signal_var /. noise_var

(** Rule-of-thumb measurements-to-disclosure from SNR for a correlation
    attack: N ~ c / rho^2 with rho^2 = SNR/(1+SNR); c = 28 corresponds to
    a 0.9 success probability at 3-sigma distinguishing margin. *)
let measurements_to_disclosure ~snr:s =
  if s <= 0.0 then Float.infinity
  else begin
    let rho_sq = s /. (1.0 +. s) in
    28.0 /. rho_sq
  end

(** Number of traces at which |t| is expected to cross the TVLA threshold,
    extrapolating t ~ k sqrt(n) from an observed (n, t) point. *)
let traces_to_threshold ~observed_t ~observed_n =
  if Float.abs observed_t < 1e-9 then Float.infinity
  else begin
    let k = Float.abs observed_t /. sqrt (Float.of_int observed_n) in
    (Tvla.threshold /. k) ** 2.0
  end
