lib/sidechannel/dom.ml: Array Eda_util Hashtbl Isw List Netlist Printf String Synth
