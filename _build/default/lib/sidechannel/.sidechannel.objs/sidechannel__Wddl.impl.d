lib/sidechannel/wddl.ml: Array Eda_util Hashtbl List Netlist Power Printf Synth Tvla
