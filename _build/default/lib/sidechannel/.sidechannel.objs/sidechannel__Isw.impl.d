lib/sidechannel/isw.ml: Array Eda_util Hashtbl List Netlist Printf String Synth
