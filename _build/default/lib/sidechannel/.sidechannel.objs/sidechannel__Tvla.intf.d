lib/sidechannel/tvla.mli:
