lib/sidechannel/leakage.ml: Array Eda_util Float Hashtbl Isw Netlist Power Synth Tvla
