lib/sidechannel/cpa.ml: Array Crypto Eda_util Float List Option Power
