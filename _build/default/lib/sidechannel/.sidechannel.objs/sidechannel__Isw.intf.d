lib/sidechannel/isw.mli: Eda_util Netlist
