lib/sidechannel/tvla.ml: Array Eda_util Float List
