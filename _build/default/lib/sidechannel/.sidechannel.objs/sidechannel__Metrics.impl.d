lib/sidechannel/metrics.ml: Array Eda_util Float Hashtbl List Option Tvla
