(** Test vector leakage assessment (TVLA, Goodwill et al. / [16]): the
    fixed-vs-random Welch t-test on power traces, the paper's reference
    technique for pre-silicon leakage evaluation (Table II, physical-
    synthesis and timing/power-verification rows).

    Two trace populations are collected — one with a *fixed* secret input,
    one with *random* secrets — under otherwise identical conditions. For
    each time sample, Welch's t statistic is computed; |t| above the
    conventional 4.5 threshold flags first-order leakage with high
    confidence. *)

module Stats = Eda_util.Stats

let threshold = 4.5

type result = {
  t_per_sample : float array;
  max_abs_t : float;
  leaky_samples : int list;  (* sample indices with |t| > threshold *)
  traces_per_class : int;
}

(** Per-sample Welch t over two trace populations (arrays of equal-length
    traces). *)
let t_test fixed_traces random_traces =
  match fixed_traces, random_traces with
  | [], _ | _, [] -> invalid_arg "Tvla.t_test: empty population"
  | f0 :: _, _ ->
    let samples = Array.length f0 in
    let column traces k = Array.of_list (List.map (fun tr -> tr.(k)) traces) in
    let t_per_sample =
      Array.init samples (fun k ->
          Stats.welch_t (column fixed_traces k) (column random_traces k))
    in
    let leaky =
      List.filter
        (fun k -> Float.abs t_per_sample.(k) > threshold)
        (List.init samples (fun k -> k))
    in
    { t_per_sample;
      max_abs_t = Stats.max_abs t_per_sample;
      leaky_samples = leaky;
      traces_per_class = min (List.length fixed_traces) (List.length random_traces) }

let leaks result = result.max_abs_t > threshold

(** Second-order (univariate) TVLA: each trace is centered by the pooled
    per-sample mean and squared before the Welch t-test, exposing leakage
    in the *variance* of the power consumption. This is the standard
    assessment that breaks 2-share masking while first-order TVLA passes
    it — the masking-order story behind the paper's Sec. IV step-function
    argument. *)
let t_test_second_order fixed_traces random_traces =
  match fixed_traces, random_traces with
  | [], _ | _, [] -> invalid_arg "Tvla.t_test_second_order: empty population"
  | f0 :: _, _ ->
    let samples = Array.length f0 in
    let all = fixed_traces @ random_traces in
    let pooled_mean =
      Array.init samples (fun k ->
          Eda_util.Stats.mean (Array.of_list (List.map (fun tr -> tr.(k)) all)))
    in
    let preprocess tr =
      Array.init samples (fun k ->
          let d = tr.(k) -. pooled_mean.(k) in
          d *. d)
    in
    t_test (List.map preprocess fixed_traces) (List.map preprocess random_traces)

(** Fixed-vs-random campaign assessed at first and second order. *)
let campaign_orders ~traces_per_class ~collect =
  let fixed = ref [] and random = ref [] in
  for _ = 1 to traces_per_class do
    fixed := collect `Fixed :: !fixed;
    random := collect `Random :: !random
  done;
  t_test !fixed !random, t_test_second_order !fixed !random

(** Full fixed-vs-random campaign: [collect cls] must produce one trace for
    class [cls] ([`Fixed] or [`Random]), drawing its own randomness.
    Classes are interleaved to avoid drift artifacts, as the TVLA procedure
    prescribes. *)
let campaign ~traces_per_class ~collect =
  let fixed = ref [] and random = ref [] in
  for _ = 1 to traces_per_class do
    fixed := collect `Fixed :: !fixed;
    random := collect `Random :: !random
  done;
  t_test !fixed !random

(** Sweep of max |t| as the trace count grows; the paper-shaped "leakage
    grows with sqrt(n)" series. [steps] are cumulative trace counts. *)
let escalation ~steps ~collect =
  let fixed = ref [] and random = ref [] in
  let collected = ref 0 in
  List.map
    (fun target ->
      while !collected < target do
        fixed := collect `Fixed :: !fixed;
        random := collect `Random :: !random;
        incr collected
      done;
      target, (t_test !fixed !random).max_abs_t)
    steps
