(** ISW private circuits (Ishai–Sahai–Wagner masking) — the scheme of the
    paper's motivational example. Secrets are split into XOR shares; AND
    gates consume fresh randomness and accumulate partial products in a
    fixed, security-critical order. Every net the transform creates is
    named with the ["isw_"] prefix, which doubles as the order barrier for
    security-aware synthesis. *)

type masked = {
  circuit : Netlist.Circuit.t;
  shares : int;
  input_shares : (string * int array) list;
      (** original input name -> its share input ids *)
  random_inputs : int array;  (** mask-randomness inputs, declaration order *)
  output_shares : (string * string array) list;
      (** original output name -> its share output names *)
}

(** Prefix of every transform-created net ("isw_"). *)
val prefix : string

(** The order-barrier predicate for [Synth.Flow.optimize_secure]. *)
val protected_name : string -> bool

(** Mask a combinational circuit with [shares] XOR shares (default 3,
    i.e. second-order ISW). Cells outside the AND/XOR/NOT basis are
    rewritten first. *)
val transform : ?shares:int -> Netlist.Circuit.t -> masked

(** Re-attach a masked descriptor to a synthesized version of its circuit:
    ids change across passes, input names do not.
    @raise Invalid_argument if synthesis dropped a share/random input. *)
val rebind : masked -> Netlist.Circuit.t -> masked

(** Split [value] into fresh random XOR shares. *)
val encode : Eda_util.Rng.t -> shares:int -> bool -> bool array

(** XOR-recombine shares. *)
val decode : bool array -> bool

(** Full input vector for the masked circuit from original input [values]
    (shares and mask randomness drawn fresh from [rng]). *)
val input_vector : Eda_util.Rng.t -> masked -> values:(string * bool) list -> bool array

(** Evaluate on original inputs with fresh masking; outputs are decoded
    from their shares. *)
val eval :
  Eda_util.Rng.t -> masked -> values:(string * bool) list -> (string * bool) list
