(** A complete AES-128 encryption core as a sequential netlist: 128 state
    flip-flops, one round per clock cycle (SubBytes via 16 shared-structure
    S-box instances, ShiftRows as wiring, MixColumns, AddRoundKey), round
    keys supplied externally per cycle (the usual core-with-external-key-
    schedule split). ~7k gates — the realistic crypto workload for the
    scan-attack, CPA and Trojan experiments, validated bit-for-bit against
    the software reference.

    Interface per cycle:
      inputs  : load, p0..p127 (plaintext), rk0..rk127 (round key),
                final (1 during the last round to skip MixColumns)
      outputs : c0..c127 (state register contents)

    Protocol (11 cycles): cycle 0 loads plaintext XOR rk[0]; cycles 1..9
    apply full rounds with rk[1..9]; cycle 10 applies the final round
    (no MixColumns) with rk[10]. After that the registers hold the
    ciphertext. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type core = {
  circuit : Circuit.t;
  load_pos : int;
  final_pos : int;
  plaintext_pos : int array;  (* 128 input positions *)
  round_key_pos : int array;  (* 128 input positions *)
}

(* Byte b of the state as its 8 register nodes (bit i = node.(i)). *)
let byte_bits state b = Array.sub state (8 * b) 8

let build () =
  let c = Circuit.create () in
  let load = Circuit.add_input ~name:"load" c in
  let final = Circuit.add_input ~name:"final" c in
  let pt = Array.init 128 (fun i -> Circuit.add_input ~name:(Printf.sprintf "p%d" i) c) in
  let rk = Array.init 128 (fun i -> Circuit.add_input ~name:(Printf.sprintf "rk%d" i) c) in
  (* State registers. *)
  let state = Array.init 128 (fun i -> Circuit.add_dff ~name:(Printf.sprintf "st%d" i) c ~d:0) in
  (* SubBytes: 16 S-box instances on the registered state. *)
  let sbox = Sbox_circuit.aes_sbox () in
  let subbed = Array.make 128 0 in
  for b = 0 to 15 do
    let outs = Circuit.inline ~into:c ~sub:sbox ~prefix:(Printf.sprintf "sb%d_" b) (byte_bits state b) in
    Array.blit outs 0 subbed (8 * b) 8
  done;
  (* ShiftRows: byte k comes from byte (4*((col+row) mod 4) + row). *)
  let shifted = Array.make 128 0 in
  for k = 0 to 15 do
    let row = k mod 4 and col = k / 4 in
    let src = (4 * ((col + row) mod 4)) + row in
    Array.blit (Array.sub subbed (8 * src) 8) 0 shifted (8 * k) 8
  done;
  (* MixColumns on each of the 4 columns. *)
  let mixed = Array.make 128 0 in
  let mc = Sbox_circuit.aes_mixcolumn () in
  for col = 0 to 3 do
    let ins = Array.sub shifted (32 * col) 32 in
    let outs = Circuit.inline ~into:c ~sub:mc ~prefix:(Printf.sprintf "mc%d_" col) ins in
    Array.blit outs 0 mixed (32 * col) 32
  done;
  (* Round datapath: final rounds skip MixColumns. *)
  let round_out =
    Array.init 128 (fun i ->
        let after_mix = Circuit.add_gate c Gate.Mux [ final; mixed.(i); shifted.(i) ] in
        Circuit.add_gate c Gate.Xor [ after_mix; rk.(i) ])
  in
  (* Load path: plaintext XOR rk (the initial AddRoundKey). *)
  let load_val = Array.init 128 (fun i -> Circuit.add_gate c Gate.Xor [ pt.(i); rk.(i) ]) in
  Array.iteri
    (fun i st ->
      let d = Circuit.add_gate c Gate.Mux [ load; round_out.(i); load_val.(i) ] in
      Circuit.connect_dff c st ~d)
    state;
  Array.iteri (fun i st -> Circuit.set_output c (Printf.sprintf "c%d" i) st) state;
  let pos_of =
    let tbl = Hashtbl.create 512 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
    fun id -> Hashtbl.find tbl id
  in
  { circuit = c;
    load_pos = pos_of load;
    final_pos = pos_of final;
    plaintext_pos = Array.map pos_of pt;
    round_key_pos = Array.map pos_of rk }

(* Bits of a 16-byte block, bit i of byte b at index 8b+i. *)
let block_to_bits block =
  Array.init 128 (fun k -> (block.(k / 8) lsr (k mod 8)) land 1 = 1)

let bits_to_block bits =
  Array.init 16 (fun b ->
      let v = ref 0 in
      for i = 7 downto 0 do
        v := (!v lsl 1) lor (if bits.((8 * b) + i) then 1 else 0)
      done;
      !v)

let input_vector core ~load ~final ~plaintext ~round_key =
  let vec = Array.make (Circuit.num_inputs core.circuit) false in
  vec.(core.load_pos) <- load;
  vec.(core.final_pos) <- final;
  let ptb = block_to_bits plaintext and rkb = block_to_bits round_key in
  Array.iteri (fun k pos -> vec.(pos) <- ptb.(k)) core.plaintext_pos;
  Array.iteri (fun k pos -> vec.(pos) <- rkb.(k)) core.round_key_pos;
  vec

(** Encrypt one block through the sequential core (11 cycles); returns the
    ciphertext and the cycle-by-cycle register states (for side-channel
    and scan experiments). *)
let encrypt core ks plaintext =
  let state = ref (Array.make (Circuit.num_dffs core.circuit) false) in
  let trace = ref [] in
  let zero = Array.make 16 0 in
  let cycle ~load ~final ~round_key =
    let vec = input_vector core ~load ~final ~plaintext:(if load then plaintext else zero) ~round_key in
    let _, next = Netlist.Sim.step core.circuit ~state:!state vec in
    state := next;
    trace := Array.copy next :: !trace
  in
  cycle ~load:true ~final:false ~round_key:ks.(0);
  for r = 1 to 9 do
    cycle ~load:false ~final:false ~round_key:ks.(r)
  done;
  cycle ~load:false ~final:true ~round_key:ks.(10);
  bits_to_block !state, List.rev !trace

(** Cross-validation against the software reference. *)
let self_test () =
  let core = build () in
  let key = Array.init 16 (fun i -> i) in
  let pt = Array.init 16 (fun i -> (i * 0x11) land 0xFF) in
  let ks = Aes.expand_key key in
  let ct, _ = encrypt core ks pt in
  ct = Aes.encrypt ks pt
