(** PRESENT-80 lightweight block cipher (CHES 2007), bit-accurate software
    model. A second, smaller workload than AES with a 4-bit S-box that keeps
    exhaustive analyses (QMC, BDD, model counting) cheap. *)

let sbox = [| 0xC; 0x5; 0x6; 0xB; 0x9; 0x0; 0xA; 0xD; 0x3; 0xE; 0xF; 0x8; 0x4; 0x7; 0x1; 0x2 |]

let inv_sbox =
  let t = Array.make 16 0 in
  Array.iteri (fun x y -> t.(y) <- x) sbox;
  t

(* Bit permutation: bit i of the state moves to position P(i). *)
let permute_bit i = if i = 63 then 63 else 16 * i mod 63

let s_layer state =
  let out = ref 0L in
  for nib = 0 to 15 do
    let v = Int64.to_int (Int64.logand (Int64.shift_right_logical state (4 * nib)) 0xFL) in
    out := Int64.logor !out (Int64.shift_left (Int64.of_int sbox.(v)) (4 * nib))
  done;
  !out

let inv_s_layer state =
  let out = ref 0L in
  for nib = 0 to 15 do
    let v = Int64.to_int (Int64.logand (Int64.shift_right_logical state (4 * nib)) 0xFL) in
    out := Int64.logor !out (Int64.shift_left (Int64.of_int inv_sbox.(v)) (4 * nib))
  done;
  !out

let p_layer state =
  let out = ref 0L in
  for i = 0 to 63 do
    let bit = Int64.logand (Int64.shift_right_logical state i) 1L in
    out := Int64.logor !out (Int64.shift_left bit (permute_bit i))
  done;
  !out

let inv_p_layer state =
  let out = ref 0L in
  for i = 0 to 63 do
    let bit = Int64.logand (Int64.shift_right_logical state (permute_bit i)) 1L in
    out := Int64.logor !out (Int64.shift_left bit i)
  done;
  !out

(* 80-bit key register as (high 64 bits, low 16 bits). *)
type key80 = { hi : int64; lo : int }

let round_keys { hi; lo } =
  let keys = Array.make 32 0L in
  let hi = ref hi and lo = ref lo in
  for r = 1 to 32 do
    keys.(r - 1) <- !hi;
    (* Rotate the 80-bit register (h = bits 79..16, l = bits 15..0) left by
       61 positions; materialize the bits in an array for clarity. *)
    let h = !hi and l = Int64.of_int !lo in
    let full_hi = ref 0L and full_lo = ref 0 in
    let bits = Array.init 80 (fun i ->
        if i < 16 then (Int64.to_int l lsr i) land 1 = 1
        else Int64.logand (Int64.shift_right_logical h (i - 16)) 1L = 1L)
    in
    let rotated = Array.init 80 (fun i -> bits.((i + 80 - 61) mod 80)) in
    (* S-box on top nibble (bits 79..76). *)
    let top = ref 0 in
    for k = 3 downto 0 do
      top := (!top lsl 1) lor (if rotated.(76 + k) then 1 else 0)
    done;
    let subbed = sbox.(!top) in
    for k = 0 to 3 do
      rotated.(76 + k) <- (subbed lsr k) land 1 = 1
    done;
    (* XOR round counter into bits 19..15. *)
    for k = 0 to 4 do
      let ctr_bit = (r lsr k) land 1 = 1 in
      if ctr_bit then rotated.(15 + k) <- not rotated.(15 + k)
    done;
    for i = 0 to 79 do
      if i < 16 then begin
        if rotated.(i) then full_lo := !full_lo lor (1 lsl i)
      end
      else if rotated.(i) then
        full_hi := Int64.logor !full_hi (Int64.shift_left 1L (i - 16))
    done;
    hi := !full_hi;
    lo := !full_lo
  done;
  keys

let encrypt key plaintext =
  let keys = round_keys key in
  let state = ref plaintext in
  for r = 0 to 30 do
    state := Int64.logxor !state keys.(r);
    state := s_layer !state;
    state := p_layer !state
  done;
  Int64.logxor !state keys.(31)

let decrypt key ciphertext =
  let keys = round_keys key in
  let state = ref (Int64.logxor ciphertext keys.(31)) in
  for r = 30 downto 0 do
    state := inv_p_layer !state;
    state := inv_s_layer !state;
    state := Int64.logxor !state keys.(r)
  done;
  !state

(** Known-answer test from the PRESENT paper: all-zero key and plaintext. *)
let self_test () =
  let zero_key = { hi = 0L; lo = 0 } in
  let ct = encrypt zero_key 0L in
  let ok1 = Int64.equal ct 0x5579C1387B228445L in
  ok1 && Int64.equal (decrypt zero_key ct) 0L
