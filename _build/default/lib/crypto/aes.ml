(** Bit-accurate software AES-128, used as the black-box oracle for
    oracle-guided attacks (SAT attack, scan attack, DFA) and to validate the
    hardware S-box netlists. Encryption and decryption over 16-byte blocks;
    state is column-major as in FIPS-197. *)

(* S-box generated from the multiplicative inverse in GF(2^8) followed by
   the affine transform; computed at startup rather than transcribed, so a
   typo in a table cannot silently corrupt it. *)

let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = if a land 0x80 <> 0 then ((a lsl 1) lxor 0x11B) land 0xFF else (a lsl 1) land 0xFF in
      go a (b lsr 1) acc
    end
  in
  go a b 0

let gf_inv x =
  if x = 0 then 0
  else begin
    (* x^254 by square-and-multiply. *)
    let rec pow base e acc =
      if e = 0 then acc
      else begin
        let acc = if e land 1 = 1 then gf_mul acc base else acc in
        pow (gf_mul base base) (e lsr 1) acc
      end
    in
    pow x 254 1
  end

let rotl8 x k = ((x lsl k) lor (x lsr (8 - k))) land 0xFF

let sbox =
  Array.init 256 (fun x ->
      let i = gf_inv x in
      i lxor rotl8 i 1 lxor rotl8 i 2 lxor rotl8 i 3 lxor rotl8 i 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun x y -> t.(y) <- x) sbox;
  t

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |]

type key_schedule = int array array  (* 11 round keys x 16 bytes *)

let expand_key (key : int array) : key_schedule =
  assert (Array.length key = 16);
  let w = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      w.(i).(j) <- key.((4 * i) + j)
    done
  done;
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        let rotated = [| temp.(1); temp.(2); temp.(3); temp.(0) |] in
        let subbed = Array.map (fun b -> sbox.(b)) rotated in
        subbed.(0) <- subbed.(0) lxor rcon.((i / 4) - 1);
        subbed
      end
      else temp
    in
    for j = 0 to 3 do
      w.(i).(j) <- w.(i - 4).(j) lxor temp.(j)
    done
  done;
  Array.init 11 (fun r ->
      Array.init 16 (fun k -> w.((4 * r) + (k / 4)).(k mod 4)))

let add_round_key state rk = Array.mapi (fun i b -> b lxor rk.(i)) state

let sub_bytes state = Array.map (fun b -> sbox.(b)) state

let inv_sub_bytes state = Array.map (fun b -> inv_sbox.(b)) state

(* State layout: byte k at row (k mod 4), column (k / 4). *)
let shift_rows state =
  Array.init 16 (fun k ->
      let row = k mod 4 and col = k / 4 in
      state.((4 * ((col + row) mod 4)) + row))

let inv_shift_rows state =
  Array.init 16 (fun k ->
      let row = k mod 4 and col = k / 4 in
      state.((4 * ((col - row + 4) mod 4)) + row))

let mix_columns state =
  Array.init 16 (fun k ->
      let col = k / 4 and row = k mod 4 in
      let b i = state.((4 * col) + i) in
      match row with
      | 0 -> gf_mul 2 (b 0) lxor gf_mul 3 (b 1) lxor b 2 lxor b 3
      | 1 -> b 0 lxor gf_mul 2 (b 1) lxor gf_mul 3 (b 2) lxor b 3
      | 2 -> b 0 lxor b 1 lxor gf_mul 2 (b 2) lxor gf_mul 3 (b 3)
      | 3 -> gf_mul 3 (b 0) lxor b 1 lxor b 2 lxor gf_mul 2 (b 3)
      | _ -> assert false)

let inv_mix_columns state =
  Array.init 16 (fun k ->
      let col = k / 4 and row = k mod 4 in
      let b i = state.((4 * col) + i) in
      match row with
      | 0 -> gf_mul 14 (b 0) lxor gf_mul 11 (b 1) lxor gf_mul 13 (b 2) lxor gf_mul 9 (b 3)
      | 1 -> gf_mul 9 (b 0) lxor gf_mul 14 (b 1) lxor gf_mul 11 (b 2) lxor gf_mul 13 (b 3)
      | 2 -> gf_mul 13 (b 0) lxor gf_mul 9 (b 1) lxor gf_mul 14 (b 2) lxor gf_mul 11 (b 3)
      | 3 -> gf_mul 11 (b 0) lxor gf_mul 13 (b 1) lxor gf_mul 9 (b 2) lxor gf_mul 14 (b 3)
      | _ -> assert false)

(** Encrypt one 16-byte block. [rounds] defaults to the full 10; reduced-
    round variants serve fault-attack experiments. *)
let encrypt ?(rounds = 10) ks plaintext =
  assert (Array.length plaintext = 16);
  let state = ref (add_round_key plaintext ks.(0)) in
  for r = 1 to rounds - 1 do
    state := add_round_key (mix_columns (shift_rows (sub_bytes !state))) ks.(r)
  done;
  add_round_key (shift_rows (sub_bytes !state)) ks.(rounds)

let decrypt ?(rounds = 10) ks ciphertext =
  assert (Array.length ciphertext = 16);
  let state = ref (add_round_key ciphertext ks.(rounds)) in
  for r = rounds - 1 downto 1 do
    state := inv_mix_columns (add_round_key (inv_sub_bytes (inv_shift_rows !state)) ks.(r))
  done;
  add_round_key (inv_sub_bytes (inv_shift_rows !state)) ks.(0)

let random_key rng = Array.init 16 (fun _ -> Eda_util.Rng.int rng 256)

let random_block = random_key

(* FIPS-197 Appendix C vector: key 000102...0f, plaintext 00112233...ff. *)
let self_test () =
  let key = Array.init 16 (fun i -> i) in
  let pt = Array.init 16 (fun i -> (i * 0x11) land 0xFF) in
  let ks = expand_key key in
  let ct = encrypt ks pt in
  let expected =
    [| 0x69; 0xC4; 0xE0; 0xD8; 0x6A; 0x7B; 0x04; 0x30;
       0xD8; 0xCD; 0xB7; 0x80; 0x70; 0xB4; 0xC5; 0x5A |]
  in
  ct = expected && decrypt ks ct = pt
