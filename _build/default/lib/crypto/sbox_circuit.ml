(** Combinational netlists for the cipher S-boxes and small crypto
    datapaths, generated from the software reference tables via memoized
    Shannon expansion. These are the standard side-channel / fault /
    scan-attack targets: the round's key addition followed by the S-box. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

let bit_tt ~arity table ~bit =
  Logic.Truth_table.create arity (fun m -> (table.(m) lsr bit) land 1 = 1)

(** AES S-box as an 8-in / 8-out netlist (output bit k = f k). *)
let aes_sbox () =
  let tts = List.init 8 (fun bit -> bit_tt ~arity:8 Aes.sbox ~bit) in
  Netlist.Generators.of_truth_tables ~input_names:(Array.init 8 (Printf.sprintf "x%d")) tts

let aes_inv_sbox () =
  let tts = List.init 8 (fun bit -> bit_tt ~arity:8 Aes.inv_sbox ~bit) in
  Netlist.Generators.of_truth_tables ~input_names:(Array.init 8 (Printf.sprintf "y%d")) tts

(** PRESENT 4-bit S-box netlist. *)
let present_sbox () =
  let table = Array.of_list (Array.to_list Present.sbox) in
  let tts = List.init 4 (fun bit -> bit_tt ~arity:4 table ~bit) in
  Netlist.Generators.of_truth_tables ~input_names:(Array.init 4 (Printf.sprintf "x%d")) tts

(** First-round AES byte datapath: inputs p0..p7 (plaintext byte) and
    k0..k7 (key byte); outputs s0..s7 = Sbox(p xor k). The canonical CPA /
    DFA / locking target. *)
let aes_round_datapath () =
  let c = Circuit.create () in
  let p = Array.init 8 (fun i -> Circuit.add_input ~name:(Printf.sprintf "p%d" i) c) in
  let k = Array.init 8 (fun i -> Circuit.add_input ~name:(Printf.sprintf "k%d" i) c) in
  let xored = Array.init 8 (fun i -> Circuit.add_gate ~name:(Printf.sprintf "ark%d" i) c Gate.Xor [ p.(i); k.(i) ]) in
  let sbox = aes_sbox () in
  let outs = Circuit.inline ~into:c ~sub:sbox ~prefix:"sb_" xored in
  Array.iteri (fun i o -> Circuit.set_output c (Printf.sprintf "s%d" i) o) outs;
  c

(** Same for PRESENT: 4-bit datapath. *)
let present_round_datapath () =
  let c = Circuit.create () in
  let p = Array.init 4 (fun i -> Circuit.add_input ~name:(Printf.sprintf "p%d" i) c) in
  let k = Array.init 4 (fun i -> Circuit.add_input ~name:(Printf.sprintf "k%d" i) c) in
  let xored = Array.init 4 (fun i -> Circuit.add_gate ~name:(Printf.sprintf "ark%d" i) c Gate.Xor [ p.(i); k.(i) ]) in
  let sbox = present_sbox () in
  let outs = Circuit.inline ~into:c ~sub:sbox ~prefix:"sb_" xored in
  Array.iteri (fun i o -> Circuit.set_output c (Printf.sprintf "s%d" i) o) outs;
  c

(** Registered variant of [aes_round_datapath]: the S-box output is captured
    in 8 DFFs, as in a round-per-cycle implementation. Scan-chain insertion
    and Hamming-distance leakage need the registers. *)
let aes_round_registered () =
  let c = Circuit.create () in
  let p = Array.init 8 (fun i -> Circuit.add_input ~name:(Printf.sprintf "p%d" i) c) in
  let k = Array.init 8 (fun i -> Circuit.add_input ~name:(Printf.sprintf "k%d" i) c) in
  let xored = Array.init 8 (fun i -> Circuit.add_gate ~name:(Printf.sprintf "ark%d" i) c Gate.Xor [ p.(i); k.(i) ]) in
  let sbox = aes_sbox () in
  let outs = Circuit.inline ~into:c ~sub:sbox ~prefix:"sb_" xored in
  Array.iteri
    (fun i o ->
      let q = Circuit.add_dff ~name:(Printf.sprintf "r%d" i) c ~d:o in
      Circuit.set_output c (Printf.sprintf "q%d" i) q)
    outs;
  c

(* GF(2^8) xtime (multiplication by 2 mod x^8+x^4+x^3+x+1) on 8 wires. *)
let xtime c bits =
  let msb = bits.(7) in
  Array.init 8 (fun i ->
      let shifted = if i = 0 then Circuit.add_const c false else bits.(i - 1) in
      (* Reduction taps at bits 0, 1, 3, 4 (0x1B). *)
      if i = 0 || i = 1 || i = 3 || i = 4 then Circuit.add_gate c Gate.Xor [ shifted; msb ]
      else shifted)

let xor_bytes c x y = Array.init 8 (fun i -> Circuit.add_gate c Gate.Xor [ x.(i); y.(i) ])

(** One AES MixColumns column (4 bytes in, 4 bytes out) as a netlist:
    out_r = 2*b_r ^ 3*b_{r+1} ^ b_{r+2} ^ b_{r+3}. Inputs c0b0..c3b7. *)
let aes_mixcolumn () =
  let c = Circuit.create () in
  let bytes =
    Array.init 4 (fun k ->
        Array.init 8 (fun i -> Circuit.add_input ~name:(Printf.sprintf "c%db%d" k i) c))
  in
  let doubled = Array.map (fun b -> xtime c b) bytes in
  let tripled = Array.init 4 (fun k -> xor_bytes c doubled.(k) bytes.(k)) in
  for r = 0 to 3 do
    let term1 = doubled.(r) in
    let term2 = tripled.((r + 1) mod 4) in
    let term3 = bytes.((r + 2) mod 4) in
    let term4 = bytes.((r + 3) mod 4) in
    let out = xor_bytes c (xor_bytes c term1 term2) (xor_bytes c term3 term4) in
    Array.iteri (fun i o -> Circuit.set_output c (Printf.sprintf "o%db%d" r i) o) out
  done;
  c

(** One full PRESENT round as a 64-bit netlist: state XOR round key,
    16 parallel S-boxes, then the bit permutation (pure wiring). Inputs
    s0..s63 (state) and k0..k63 (round key); outputs o0..o63. The largest
    combinational workload in the generator set (~1.5k gates). *)
let present_round () =
  let c = Circuit.create () in
  let s = Array.init 64 (fun i -> Circuit.add_input ~name:(Printf.sprintf "s%d" i) c) in
  let k = Array.init 64 (fun i -> Circuit.add_input ~name:(Printf.sprintf "k%d" i) c) in
  let xored =
    Array.init 64 (fun i -> Circuit.add_gate c Gate.Xor [ s.(i); k.(i) ])
  in
  let sbox = present_sbox () in
  let subbed = Array.make 64 0 in
  for nib = 0 to 15 do
    let ins = Array.init 4 (fun b -> xored.((4 * nib) + b)) in
    let outs = Circuit.inline ~into:c ~sub:sbox ~prefix:(Printf.sprintf "sb%d_" nib) ins in
    Array.iteri (fun b o -> subbed.((4 * nib) + b) <- o) outs
  done;
  let permuted = Array.make 64 0 in
  for i = 0 to 63 do
    permuted.(Present.permute_bit i) <- subbed.(i)
  done;
  Array.iteri (fun i o -> Circuit.set_output c (Printf.sprintf "o%d" i) o) permuted;
  c

(** Helper: drive a byte value into an 8-bit input group. *)
let byte_to_bits v = Array.init 8 (fun i -> (v lsr i) land 1 = 1)

let bits_to_byte bits =
  let v = ref 0 in
  for i = Array.length bits - 1 downto 0 do
    v := (!v lsl 1) lor (if bits.(i) then 1 else 0)
  done;
  !v
