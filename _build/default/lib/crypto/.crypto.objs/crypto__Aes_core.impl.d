lib/crypto/aes_core.ml: Aes Array Hashtbl List Netlist Printf Sbox_circuit
