lib/crypto/aes.ml: Array Eda_util
