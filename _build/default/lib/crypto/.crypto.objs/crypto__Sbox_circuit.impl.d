lib/crypto/sbox_circuit.ml: Aes Array List Logic Netlist Present Printf
