lib/crypto/present.ml: Array Int64
