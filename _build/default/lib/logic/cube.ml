(** Cubes (product terms) over n variables with three-valued literals, and
    sum-of-products covers. Used by two-level minimization and by the rare-
    signal trigger analysis for Trojans. *)

type literal = Pos | Neg | Dc

type t = literal array

let create arity = Array.make arity Dc

let of_minterm ~arity m =
  Array.init arity (fun i -> if (m lsr i) land 1 = 1 then Pos else Neg)

let literal_to_char = function Pos -> '1' | Neg -> '0' | Dc -> '-'

let to_string c = String.init (Array.length c) (fun i -> literal_to_char c.(Array.length c - 1 - i))

let arity = Array.length

(** Does the cube contain the assignment encoded by minterm [m]? *)
let covers c m =
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      let bit = (m lsr i) land 1 = 1 in
      match lit with
      | Pos -> if not bit then ok := false
      | Neg -> if bit then ok := false
      | Dc -> ())
    c;
  !ok

(** Merge two cubes differing in exactly one literal position where both are
    specified; the Quine-McCluskey combining step. *)
let combine a b =
  assert (Array.length a = Array.length b);
  let diff = ref 0 and pos = ref (-1) in
  Array.iteri
    (fun i la ->
      if la <> b.(i) then begin
        incr diff;
        pos := i
      end)
    a;
  if !diff = 1 && a.(!pos) <> Dc && b.(!pos) <> Dc then begin
    let c = Array.copy a in
    c.(!pos) <- Dc;
    Some c
  end
  else None

let num_literals c =
  Array.fold_left (fun acc l -> match l with Dc -> acc | Pos | Neg -> acc + 1) 0 c

(** Number of minterms the cube covers. *)
let volume c = 1 lsl (arity c - num_literals c)
