(** Reduced ordered binary decision diagrams with a shared node table.
    Used for exact equivalence of medium functions, model counting for
    quantitative information flow, and don't-care analysis. Variable order
    is the natural index order. *)

type node = False | True | Node of { var : int; low : t; high : t; id : int }
and t = node

let id = function False -> 0 | True -> 1 | Node n -> n.id

module Key = struct
  type t = int * int * int  (* var, low id, high id *)

  let equal (a : t) b = a = b
  let hash = Hashtbl.hash
end

module Table = Hashtbl.Make (Key)

type manager = {
  unique : t Table.t;
  mutable next_id : int;
  cache : (int * int * int, t) Hashtbl.t;  (* op tag, id1, id2 *)
}

let manager () = { unique = Table.create 1024; next_id = 2; cache = Hashtbl.create 1024 }

let mk mgr var low high =
  if id low = id high then low
  else begin
    let key = (var, id low, id high) in
    match Table.find_opt mgr.unique key with
    | Some n -> n
    | None ->
      let n = Node { var; low; high; id = mgr.next_id } in
      mgr.next_id <- mgr.next_id + 1;
      Table.add mgr.unique key n;
      n
  end

let var_of = function Node n -> n.var | False | True -> max_int

let op_and = 0
let op_or = 1
let op_xor = 2

(* Structural complement; canonical because [mk] hash-conses. *)
let rec neg mgr = function
  | False -> True
  | True -> False
  | Node n -> mk mgr n.var (neg mgr n.low) (neg mgr n.high)

let rec apply mgr op a b =
  let terminal =
    match op, a, b with
    | 0, False, _ | 0, _, False -> Some False
    | 0, True, x | 0, x, True -> Some x
    | 1, True, _ | 1, _, True -> Some True
    | 1, False, x | 1, x, False -> Some x
    | 2, False, x | 2, x, False -> Some x
    | 2, True, True -> Some False
    | 2, True, (Node _ as x) | 2, (Node _ as x), True -> Some (neg mgr x)
    | _, _, _ -> None
  in
  match terminal with
  | Some r -> r
  | None ->
    let key = (op, min (id a) (id b), max (id a) (id b)) in
    (match Hashtbl.find_opt mgr.cache key with
     | Some r -> r
     | None ->
       let v = min (var_of a) (var_of b) in
       let cof x side =
         match x with
         | Node n when n.var = v -> if side then n.high else n.low
         | False | True | Node _ -> x
       in
       let low = apply mgr op (cof a false) (cof b false) in
       let high = apply mgr op (cof a true) (cof b true) in
       let r = mk mgr v low high in
       Hashtbl.add mgr.cache key r;
       r)

let band mgr a b = apply mgr op_and a b
let bor mgr a b = apply mgr op_or a b
let bxor mgr a b = apply mgr op_xor a b

let bvar mgr i = mk mgr i False True

let rec eval bdd assignment =
  match bdd with
  | False -> false
  | True -> true
  | Node n -> eval (if assignment n.var then n.high else n.low) assignment

(** Model count over [nvars] variables. *)
let count_models bdd ~nvars =
  let memo = Hashtbl.create 64 in
  let rec go node =
    match node with
    | False -> 0.0, nvars
    | True -> 1.0, nvars
    | Node n ->
      (match Hashtbl.find_opt memo n.id with
       | Some r -> r
       | None ->
         let cl, dl = go n.low and ch, dh = go n.high in
         (* Normalise both branches to level n.var + 1. *)
         let scale c d = c *. (2.0 ** Float.of_int (d - (n.var + 1))) in
         let r = (scale cl dl +. scale ch dh, n.var) in
         Hashtbl.add memo n.id r;
         r)
  in
  let c, d = go bdd in
  c *. (2.0 ** Float.of_int d)

let is_tautology bdd = bdd = True
let is_contradiction bdd = bdd = False

let equal a b = id a = id b

(** Build a BDD from a truth table (inputs indexed from 0). *)
let of_truth_table mgr tt =
  let arity = Truth_table.arity tt in
  let result = ref False in
  for m = 0 to Truth_table.size tt - 1 do
    if Truth_table.eval tt m then begin
      let cube = ref True in
      for i = 0 to arity - 1 do
        let v = bvar mgr i in
        let lit = if (m lsr i) land 1 = 1 then v else neg mgr v in
        cube := band mgr !cube lit
      done;
      result := bor mgr !result !cube
    end
  done;
  !result

(** Size (number of distinct internal nodes). *)
let node_count bdd =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        go n.low;
        go n.high
      end
  in
  go bdd;
  Hashtbl.length seen
