(** Truth tables for Boolean functions of up to 16 inputs, stored as a
    [Bytes.t] of 0/1 entries indexed by the input minterm. The workhorse
    for exact model counting (quantitative information flow), camouflaged
    cell semantics and small-function equivalence checks. *)

type t = { arity : int; bits : Bytes.t }

let create arity f =
  assert (arity >= 0 && arity <= 16);
  let n = 1 lsl arity in
  let bits = Bytes.create n in
  for m = 0 to n - 1 do
    Bytes.set bits m (if f m then '\001' else '\000')
  done;
  { arity; bits }

let arity t = t.arity

let size t = Bytes.length t.bits

let eval t minterm =
  assert (minterm >= 0 && minterm < size t);
  Bytes.get t.bits minterm = '\001'

(** Evaluate on an explicit input assignment, bit i of the minterm being
    input i. *)
let eval_bits t inputs =
  assert (Array.length inputs = t.arity);
  let m = ref 0 in
  for i = t.arity - 1 downto 0 do
    m := (!m lsl 1) lor (if inputs.(i) then 1 else 0)
  done;
  eval t !m

let equal a b = a.arity = b.arity && Bytes.equal a.bits b.bits

(** Number of minterms mapped to true — the model count. *)
let count_ones t =
  let acc = ref 0 in
  for m = 0 to size t - 1 do
    if eval t m then incr acc
  done;
  !acc

let constant arity value = create arity (fun _ -> value)

let var arity i =
  assert (i >= 0 && i < arity);
  create arity (fun m -> (m lsr i) land 1 = 1)

let map2 f a b =
  assert (a.arity = b.arity);
  create a.arity (fun m -> f (eval a m) (eval b m))

let lnot a = create a.arity (fun m -> not (eval a m))
let land_ = map2 ( && )
let lor_ = map2 ( || )
let lxor_ = map2 ( <> )

(** Cofactor with input [i] fixed to [value]; arity is preserved (the
    function simply becomes independent of input [i]). *)
let cofactor t i value =
  assert (i >= 0 && i < t.arity);
  let mask = 1 lsl i in
  create t.arity (fun m ->
      let m' = if value then m lor mask else m land Stdlib.lnot mask in
      eval t m')

(** Does the function depend on input [i]? *)
let depends_on t i =
  not (equal (cofactor t i false) (cofactor t i true))

let support t =
  List.filter (depends_on t) (List.init t.arity (fun i -> i))

let to_string t =
  String.init (size t) (fun m -> if eval t m then '1' else '0')

let of_string arity s =
  assert (String.length s = 1 lsl arity);
  create arity (fun m -> s.[m] = '1')
