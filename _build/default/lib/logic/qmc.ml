(** Quine-McCluskey two-level minimization (exact prime generation, greedy
    cover selection). Adequate for the <=10-input functions that appear in
    camouflage-constrained synthesis and S-box decomposition. *)

let prime_implicants ~arity minterms dontcares =
  let all = List.sort_uniq compare (minterms @ dontcares) in
  let initial = List.map (fun m -> Cube.of_minterm ~arity m) all in
  (* Iteratively combine; cubes that never combine are prime. *)
  let rec round cubes primes =
    if cubes = [] then primes
    else begin
      let used = Hashtbl.create 16 in
      let next = ref [] in
      let cubes_arr = Array.of_list cubes in
      let n = Array.length cubes_arr in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          match Cube.combine cubes_arr.(i) cubes_arr.(j) with
          | Some c ->
            Hashtbl.replace used i ();
            Hashtbl.replace used j ();
            if not (List.exists (fun c' -> c' = c) !next) then next := c :: !next
          | None -> ()
        done
      done;
      let new_primes = ref primes in
      Array.iteri
        (fun i c ->
          if not (Hashtbl.mem used i) && not (List.mem c !new_primes) then
            new_primes := c :: !new_primes)
        cubes_arr;
      round !next !new_primes
    end
  in
  round initial []

(** Greedy essential-first cover of [minterms] by primes. *)
let select_cover primes minterms =
  let uncovered = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace uncovered m ()) minterms;
  let chosen = ref [] in
  (* Essential primes: minterms covered by exactly one prime. *)
  let covering m = List.filter (fun p -> Cube.covers p m) primes in
  List.iter
    (fun m ->
      match covering m with
      | [ p ] when Hashtbl.mem uncovered m ->
        if not (List.memq p !chosen) then begin
          chosen := p :: !chosen;
          Hashtbl.iter
            (fun m' () -> if Cube.covers p m' then Hashtbl.remove uncovered m')
            (Hashtbl.copy uncovered)
        end
      | _ -> ())
    minterms;
  (* Greedy: repeatedly take the prime covering most uncovered minterms. *)
  let rec loop () =
    if Hashtbl.length uncovered = 0 then ()
    else begin
      let score p =
        Hashtbl.fold (fun m () acc -> if Cube.covers p m then acc + 1 else acc) uncovered 0
      in
      let best =
        List.fold_left
          (fun acc p ->
            match acc with
            | None -> if score p > 0 then Some p else None
            | Some b -> if score p > score b then Some p else acc)
          None primes
      in
      match best with
      | None -> ()  (* should not happen if primes cover all minterms *)
      | Some p ->
        chosen := p :: !chosen;
        Hashtbl.iter
          (fun m () -> if Cube.covers p m then Hashtbl.remove uncovered m)
          (Hashtbl.copy uncovered);
        loop ()
    end
  in
  loop ();
  !chosen

(** Minimize a truth table into an SOP cover (list of cubes). *)
let minimize tt =
  let arity = Truth_table.arity tt in
  let minterms =
    List.filter (Truth_table.eval tt) (List.init (Truth_table.size tt) (fun m -> m))
  in
  if minterms = [] then []
  else begin
    let primes = prime_implicants ~arity minterms [] in
    select_cover primes minterms
  end

(** Literal count of a cover — the classic two-level cost metric. *)
let cover_cost cover = List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 cover

(** Check a cover implements the truth table exactly. *)
let cover_implements cover tt =
  let arity = Truth_table.arity tt in
  let f m = List.exists (fun c -> Cube.covers c m) cover in
  Truth_table.equal tt (Truth_table.create arity f)
