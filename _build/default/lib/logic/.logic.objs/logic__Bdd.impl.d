lib/logic/bdd.ml: Float Hashtbl Truth_table
