lib/logic/cube.ml: Array String
