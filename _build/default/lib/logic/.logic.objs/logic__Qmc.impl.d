lib/logic/qmc.ml: Array Cube Hashtbl List Truth_table
