lib/logic/truth_table.ml: Array Bytes List Stdlib String
