(** Ring-oscillator PUF: responses from pairwise frequency comparisons of
    nominally identical ROs. More area than an arbiter PUF but much easier
    to compose in standard-cell flows — the trade a security-driven HLS
    stage would weigh when allocating entropy primitives (Table II). *)

module Rng = Eda_util.Rng

type t = {
  frequencies : float array;  (* one per RO, MHz-ish arbitrary unit *)
  noise_sigma : float;
}

let manufacture rng ?(variation = 1.0) ?(noise_sigma = 0.02) ~oscillators () =
  { frequencies =
      Array.init oscillators (fun _ -> 100.0 +. (Rng.gaussian rng *. variation));
    noise_sigma }

let measure rng puf i =
  puf.frequencies.(i) +. Rng.gaussian_scaled rng ~mean:0.0 ~sigma:puf.noise_sigma

(** Response bit for a pair challenge (i, j): is RO i faster? *)
let response rng puf (i, j) = measure rng puf i > measure rng puf j

(** All disjoint-pair response bits (the standard readout). *)
let response_bits rng puf =
  let n = Array.length puf.frequencies in
  Array.init (n / 2) (fun k -> response rng puf (2 * k, (2 * k) + 1))

let reliability rng puf ~remeasurements =
  let reference = response_bits rng puf in
  let flips = ref 0 and total = ref 0 in
  for _ = 1 to remeasurements do
    let again = response_bits rng puf in
    Array.iteri
      (fun k b ->
        incr total;
        if b <> reference.(k) then incr flips)
      again
  done;
  1.0 -. (Float.of_int !flips /. Float.of_int !total)

let uniqueness rng ~chips ~oscillators =
  let pufs = Array.init chips (fun _ -> manufacture rng ~oscillators ()) in
  let bits = Array.map (fun p -> response_bits rng p) pufs in
  let total = ref 0.0 and pairs = ref 0 in
  let nb = Array.length bits.(0) in
  for i = 0 to chips - 1 do
    for j = i + 1 to chips - 1 do
      let hd = ref 0 in
      for k = 0 to nb - 1 do
        if bits.(i).(k) <> bits.(j).(k) then incr hd
      done;
      total := !total +. (Float.of_int !hd /. Float.of_int nb);
      incr pairs
    done
  done;
  !total /. Float.of_int !pairs
