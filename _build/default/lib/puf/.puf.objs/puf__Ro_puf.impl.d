lib/puf/ro_puf.ml: Array Eda_util Float
