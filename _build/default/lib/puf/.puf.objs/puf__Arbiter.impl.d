lib/puf/arbiter.ml: Array Eda_util Float
