lib/puf/arbiter.mli: Eda_util
