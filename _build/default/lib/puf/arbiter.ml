(** Arbiter PUF behavioural model ([19], [42], [30]): a challenge steers a
    rising edge through [stages] pairs of delay elements; an arbiter at the
    end decides which path won. Manufacturing variation makes the decision
    chip-unique; thermal noise makes it slightly unstable.

    The standard additive linear delay model: each stage contributes a
    delay difference depending on its challenge bit; the response is the
    sign of the accumulated difference. The model exposes the classic
    metrics (uniformity, uniqueness, reliability) and is — by the same
    linearity — learnable by the logistic-regression modelling attack,
    which the layout-asymmetry enhancement [30] mitigates by increasing
    per-stage variance (more entropy per stage). *)

module Rng = Eda_util.Rng
module Stats = Eda_util.Stats

type t = {
  stages : int;
  (* Per stage: delay-difference parameters for challenge bit 0 / 1. *)
  delta : float array;  (* stage weight *)
  bias : float;  (* arbiter offset *)
  noise_sigma : float;
}

(** Manufacture one PUF instance. [variation] scales the per-stage delay
    spread (the [30]-style asymmetric-layout enhancement increases it). *)
let manufacture rng ?(variation = 1.0) ?(noise_sigma = 0.05) ~stages () =
  { stages;
    delta = Array.init stages (fun _ -> Rng.gaussian rng *. variation);
    bias = Rng.gaussian rng *. 0.1;
    noise_sigma }

(* The additive model uses the parity-transformed challenge: phi_i =
   product of (1-2c_j) for j >= i. *)
let features challenge =
  let n = Array.length challenge in
  let phi = Array.make n 1.0 in
  let acc = ref 1.0 in
  for i = n - 1 downto 0 do
    acc := !acc *. (if challenge.(i) then -1.0 else 1.0);
    phi.(i) <- !acc
  done;
  phi

(** Evaluate a challenge; [rng] supplies the measurement noise. *)
let response rng puf challenge =
  assert (Array.length challenge = puf.stages);
  let phi = features challenge in
  let sum = ref puf.bias in
  for i = 0 to puf.stages - 1 do
    sum := !sum +. (puf.delta.(i) *. phi.(i))
  done;
  !sum +. Rng.gaussian_scaled rng ~mean:0.0 ~sigma:puf.noise_sigma > 0.0

let random_challenge rng puf = Array.init puf.stages (fun _ -> Rng.bool rng)

(** Uniformity: fraction of 1-responses over random challenges (ideal 0.5). *)
let uniformity rng puf ~challenges =
  let ones = ref 0 in
  for _ = 1 to challenges do
    if response rng puf (random_challenge rng puf) then incr ones
  done;
  Float.of_int !ones /. Float.of_int challenges

(** Reliability: 1 - intra-chip bit error rate over repeated measurements
    of the same challenges (ideal 1.0). *)
let reliability rng puf ~challenges ~remeasurements =
  let flips = ref 0 and total = ref 0 in
  for _ = 1 to challenges do
    let ch = random_challenge rng puf in
    let reference = response rng puf ch in
    for _ = 1 to remeasurements do
      incr total;
      if response rng puf ch <> reference then incr flips
    done
  done;
  1.0 -. (Float.of_int !flips /. Float.of_int !total)

(** Uniqueness: mean pairwise inter-chip Hamming distance of response
    vectors (ideal 0.5). *)
let uniqueness rng ~chips ~stages ~challenges =
  let pufs = Array.init chips (fun _ -> manufacture rng ~stages ()) in
  let chs = Array.init challenges (fun _ -> Array.init stages (fun _ -> Rng.bool rng)) in
  let responses =
    Array.map (fun p -> Array.map (fun ch -> response rng p ch) chs) pufs
  in
  let total = ref 0.0 and pairs = ref 0 in
  for i = 0 to chips - 1 do
    for j = i + 1 to chips - 1 do
      let hd = ref 0 in
      for k = 0 to challenges - 1 do
        if responses.(i).(k) <> responses.(j).(k) then incr hd
      done;
      total := !total +. (Float.of_int !hd /. Float.of_int challenges);
      incr pairs
    done
  done;
  !total /. Float.of_int !pairs

(** Logistic-regression modelling attack: learn the additive model from
    [training] CRPs by gradient descent; report prediction accuracy on
    fresh challenges. *)
let modeling_attack rng puf ~training ~test ~epochs ~learning_rate =
  let n = puf.stages in
  let crps =
    Array.init training (fun _ ->
        let ch = random_challenge rng puf in
        features ch, response rng puf ch)
  in
  let w = Array.make (n + 1) 0.0 in  (* weights + bias *)
  let predict phi =
    let s = ref w.(n) in
    for i = 0 to n - 1 do
      s := !s +. (w.(i) *. phi.(i))
    done;
    1.0 /. (1.0 +. exp (-. !s))
  in
  for _ = 1 to epochs do
    Array.iter
      (fun (phi, r) ->
        let y = if r then 1.0 else 0.0 in
        let p = predict phi in
        let err = y -. p in
        for i = 0 to n - 1 do
          w.(i) <- w.(i) +. (learning_rate *. err *. phi.(i))
        done;
        w.(n) <- w.(n) +. (learning_rate *. err))
      crps
  done;
  let correct = ref 0 in
  for _ = 1 to test do
    let ch = random_challenge rng puf in
    let predicted = predict (features ch) > 0.5 in
    if predicted = response rng puf ch then incr correct
  done;
  Float.of_int !correct /. Float.of_int test

(** Expected-use summary for metering/authentication flows. *)
type quality = { uniformity : float; reliability : float }

let quality rng puf =
  { uniformity = uniformity rng puf ~challenges:2000;
    reliability = reliability rng puf ~challenges:200 ~remeasurements:11 }
