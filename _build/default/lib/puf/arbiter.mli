(** Arbiter PUF behavioural model (additive linear delay model) with the
    standard quality metrics and the logistic-regression modelling attack
    that breaks it. *)

type t

(** Manufacture one instance. [variation] scales per-stage delay spread
    (the asymmetric-layout enhancement of [30] raises it); [noise_sigma]
    models per-measurement thermal noise. *)
val manufacture :
  Eda_util.Rng.t -> ?variation:float -> ?noise_sigma:float -> stages:int -> unit -> t

(** Parity-transformed challenge features (the +/-1 vector of the additive
    model); exposed for the modelling attack and its tests. *)
val features : bool array -> float array

(** Evaluate a challenge (measurement noise drawn from [rng]). *)
val response : Eda_util.Rng.t -> t -> bool array -> bool

val random_challenge : Eda_util.Rng.t -> t -> bool array

(** Fraction of 1-responses over random challenges (ideal 0.5). *)
val uniformity : Eda_util.Rng.t -> t -> challenges:int -> float

(** 1 - intra-chip bit error rate over repeated measurements (ideal 1.0). *)
val reliability : Eda_util.Rng.t -> t -> challenges:int -> remeasurements:int -> float

(** Mean pairwise inter-chip response distance (ideal 0.5). *)
val uniqueness : Eda_util.Rng.t -> chips:int -> stages:int -> challenges:int -> float

(** Logistic-regression modelling attack: prediction accuracy on fresh
    challenges after training on [training] CRPs. *)
val modeling_attack :
  Eda_util.Rng.t ->
  t ->
  training:int ->
  test:int ->
  epochs:int ->
  learning_rate:float ->
  float

type quality = { uniformity : float; reliability : float }

val quality : Eda_util.Rng.t -> t -> quality
