(** Secure composition of countermeasures — the paper's Sec. IV argument
    made executable.

    Target: the private-circuit AND of the motivational example. Four
    design points combine masking (vs side channels) and parity-based
    error detection (vs fault injection):

      Baseline | Masked | Parity | Masked_and_parity

    Every design point is evaluated against *both* threats plus cost, and
    the composed point exhibits the documented negative cross-effect [61]:
    the parity tree XORs the output shares together, materializing the
    unmasked secret on a wire — error detection *destroys* the masking.
    The engine's job is exactly what the paper demands: after any new
    countermeasure, re-run all evaluations, including seemingly unrelated
    ones. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng
module Isw = Sidechannel.Isw

type point = Baseline | Masked | Parity | Masked_and_parity

let all_points = [ Baseline; Masked; Parity; Masked_and_parity ]

let point_name = function
  | Baseline -> "baseline"
  | Masked -> "masked (ISW)"
  | Parity -> "parity-protected"
  | Masked_and_parity -> "masked + parity"

type design = {
  point : point;
  circuit : Circuit.t;
  masked : Isw.masked option;  (* drives share/randomness inputs *)
  alarm : string option;  (* error-detection alarm output name *)
}

(* Protect a circuit with an independent predictor of the XOR of its
   outputs (cf. Fault.Countermeasure.parity_protect, rebuilt here so the
   masked variant can keep its Isw descriptor attached). *)
let add_parity source =
  let prot = Fault.Countermeasure.parity_protect source in
  prot.Fault.Countermeasure.circuit

let build point =
  let source = Sidechannel.Leakage.private_and_source () in
  match point with
  | Baseline -> { point; circuit = source; masked = None; alarm = None }
  | Masked ->
    let m = Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_aware in
    { point; circuit = m.Isw.circuit; masked = Some m; alarm = None }
  | Parity ->
    { point; circuit = add_parity source; masked = None; alarm = Some "alarm" }
  | Masked_and_parity ->
    let m = Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_aware in
    let protected_c = add_parity m.Isw.circuit in
    let m = Isw.rebind m protected_c in
    { point; circuit = protected_c; masked = Some m; alarm = Some "alarm" }

(* Input vector for secrets (a, b), drawing shares/randomness when masked. *)
let stimulus rng design ~a ~b =
  match design.masked with
  | Some m -> Isw.input_vector rng m ~values:[ ("a", a); ("b", b) ]
  | None -> [| a; b |]

(** First-order TVLA max |t| under the Hamming-weight model. *)
let tvla_max_t rng design ~traces_per_class ~noise_sigma =
  let collect cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Rng.bool rng, Rng.bool rng
    in
    let vec = stimulus rng design ~a ~b in
    [| Power.Model.hamming_weight_sample rng design.circuit ~noise_sigma ~inputs:vec |]
  in
  (Sidechannel.Tvla.campaign ~traces_per_class ~collect).Sidechannel.Tvla.max_abs_t

(** Fault detection rate: fraction of random transient bit-flips that are
    caught by the alarm (0 without error detection). *)
let fault_detection_rate rng design ~injections =
  match design.alarm with
  | None -> 0.0
  | Some alarm_name ->
    let c = design.circuit in
    let outs = Circuit.outputs c in
    let alarm_idx =
      let rec find k = if fst outs.(k) = alarm_name then k else find (k + 1) in
      find 0
    in
    let n = Circuit.node_count c in
    let detected = ref 0 and corrupting = ref 0 in
    let attempts = ref 0 in
    while !corrupting < injections && !attempts < 50 * injections do
      incr attempts;
      let node = Rng.int rng n in
      (match Circuit.kind c node with
       | Gate.Input | Gate.Const _ | Gate.Dff -> ()
       | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
       | Gate.Xor | Gate.Xnor | Gate.Mux ->
         let a = Rng.bool rng and b = Rng.bool rng in
         let vec = stimulus rng design ~a ~b in
         let golden = Netlist.Sim.eval c vec in
         let faulty =
           Fault.Model.eval_faulty c ~faults:[ Fault.Model.Bit_flip { node } ] vec
         in
         if faulty <> golden then begin
           incr corrupting;
           if faulty.(alarm_idx) && not golden.(alarm_idx) then incr detected
         end)
    done;
    if !corrupting = 0 then 0.0
    else Float.of_int !detected /. Float.of_int !corrupting

(** Full cross-effect evaluation of one design point. *)
let evaluate rng design ~traces_per_class ~noise_sigma ~injections =
  let stats = Circuit.stats design.circuit in
  let t = tvla_max_t rng design ~traces_per_class ~noise_sigma in
  let det = fault_detection_rate rng design ~injections in
  [ Metric.security ~name:"TVLA max |t|" ~value:t ~unit_:"sigma" ~higher_is_better:false;
    Metric.security ~name:"fault detection rate" ~value:det ~unit_:"frac" ~higher_is_better:true;
    Metric.ppa ~name:"area" ~value:stats.Circuit.area ~unit_:"NAND2eq" ~higher_is_better:false;
    Metric.ppa ~name:"delay"
      ~value:(Timing.Sta.analyze design.circuit).Timing.Sta.critical_path_delay
      ~unit_:"ps" ~higher_is_better:false ]

(** The composition matrix: every point evaluated on every metric — the
    re-run-everything discipline of Sec. IV. *)
let matrix rng ~traces_per_class ~noise_sigma ~injections =
  List.map
    (fun point ->
      let design = build point in
      point, evaluate rng design ~traces_per_class ~noise_sigma ~injections)
    all_points
