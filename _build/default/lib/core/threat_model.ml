(** Table I of the paper as executable data: the four threat vectors, when
    they strike, and what role EDA plays for each. Every role is backed by
    a concrete evaluation or mitigation implemented in this toolkit, so the
    table can be *regenerated* rather than merely restated. *)

type vector =
  | Side_channel
  | Fault_injection
  | Piracy_counterfeiting
  | Trojans

let all = [ Side_channel; Fault_injection; Piracy_counterfeiting; Trojans ]

type attack_time = Runtime | Manufacturing | In_the_field | Design_time

type role = Evaluation_at_design_time | Mitigation_at_design_time | Verification | Test_preparation

type row = {
  vector : vector;
  times : attack_time list;
  roles : role list;
  toolkit_evaluation : string;  (* module implementing the evaluation *)
  toolkit_mitigation : string;  (* module implementing the mitigation *)
}

let name = function
  | Side_channel -> "Side-channel attacks"
  | Fault_injection -> "Fault-injection attacks"
  | Piracy_counterfeiting -> "IP piracy; counterfeiting"
  | Trojans -> "Hardware Trojans"

let time_name = function
  | Runtime -> "runtime"
  | Manufacturing -> "manufacturing"
  | In_the_field -> "in the field"
  | Design_time -> "design"

let role_name = function
  | Evaluation_at_design_time -> "evaluation at design time"
  | Mitigation_at_design_time -> "mitigation at design time"
  | Verification -> "verification"
  | Test_preparation -> "preparing for test/inspection"

let table =
  [ { vector = Side_channel;
      times = [ Runtime ];
      roles = [ Evaluation_at_design_time; Mitigation_at_design_time ];
      toolkit_evaluation = "Sidechannel.Tvla / Sidechannel.Cpa / Iflow.Qif";
      toolkit_mitigation = "Sidechannel.Isw (masking) + Synth.Flow.optimize_secure" };
    { vector = Fault_injection;
      times = [ Runtime ];
      roles = [ Evaluation_at_design_time; Mitigation_at_design_time ];
      toolkit_evaluation = "Fault.Model (campaigns) / Fault.Dfa";
      toolkit_mitigation = "Fault.Countermeasure (parity/duplication/infective)" };
    { vector = Piracy_counterfeiting;
      times = [ Manufacturing; In_the_field ];
      roles = [ Mitigation_at_design_time ];
      toolkit_evaluation = "Locking.Sat_attack / Locking.Structural / Splitmfg.Split";
      toolkit_mitigation = "Locking.Lock / Camo.Camouflage / Splitmfg + Puf (counterfeiting)" };
    { vector = Trojans;
      times = [ Design_time; Manufacturing ];
      roles = [ Mitigation_at_design_time; Verification; Test_preparation ];
      toolkit_evaluation = "Trojan.Detect (MERO/fingerprint/IDDQ)";
      toolkit_mitigation = "Trojan.Bisa / Iflow.Taint (design-time verification)" } ]
