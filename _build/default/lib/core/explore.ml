(** Security-aware design-space exploration (the closing ask of Sec. IV):
    enumerate countermeasure combinations, evaluate *every* metric on each
    (the re-run-everything discipline), and return the Pareto frontier.

    Crucially, the dominance check treats security metrics by *threshold*,
    not by magnitude: the paper argues security metrics act like step
    functions — max|t| of 0.5 and 1.5 are equally "secure" (both below the
    4.5 line), while 4.4 vs 4.6 is the whole difference. Cost metrics
    compare by magnitude as usual. A naive magnitude-based explorer would
    pay area for meaningless "extra" security; this one does not. *)

type evaluated = {
  point : Composition.point;
  metrics : Metric.t list;
}

(* Security metrics pass/fail by threshold; thresholds per metric name. *)
let security_threshold metric =
  match metric.Metric.name with
  | "TVLA max |t|" -> Some Sidechannel.Tvla.threshold
  | "fault detection rate" -> Some 0.99
  | _ -> None

let passes metric =
  match security_threshold metric with
  | None -> true
  | Some thr ->
    if metric.Metric.higher_is_better then metric.Metric.value >= thr
    else metric.Metric.value <= thr

(* a dominates b: a is no worse on every axis and strictly better on one.
   Security axes compare by pass/fail; PPA axes by value. *)
let dominates a b =
  let better_or_equal = ref true and strictly = ref false in
  List.iter2
    (fun ma mb ->
      match ma.Metric.family with
      | Metric.Security ->
        let pa = passes ma and pb = passes mb in
        if pa && not pb then strictly := true
        else if (not pa) && pb then better_or_equal := false
      | Metric.Ppa ->
        let va = ma.Metric.value and vb = mb.Metric.value in
        let a_better = if ma.Metric.higher_is_better then va > vb else va < vb in
        let a_worse = if ma.Metric.higher_is_better then va < vb else va > vb in
        if a_better then strictly := true;
        if a_worse then better_or_equal := false)
    a.metrics b.metrics;
  !better_or_equal && !strictly

(** Evaluate all composition points and return (all, pareto-front). *)
let run rng ~traces_per_class ~noise_sigma ~injections =
  let all =
    List.map
      (fun (point, metrics) -> { point; metrics })
      (Composition.matrix rng ~traces_per_class ~noise_sigma ~injections)
  in
  let front =
    List.filter (fun cand -> not (List.exists (fun other -> dominates other cand) all)) all
  in
  all, front

(** Which threats does a point cover? Derived from its pass/fail profile. *)
let covered_threats evaluated =
  List.filter_map
    (fun m ->
      match m.Metric.name, passes m with
      | "TVLA max |t|", true -> Some Threat_model.Side_channel
      | "fault detection rate", true -> Some Threat_model.Fault_injection
      | _, _ -> None)
    evaluated.metrics
