lib/core/explore.ml: Composition List Metric Sidechannel Threat_model
