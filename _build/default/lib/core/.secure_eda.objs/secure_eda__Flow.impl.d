lib/core/flow.ml: Array Dft Eda_util List Netlist Physical Printf Synth Timing
