lib/core/scheme_registry.ml: Array Camo Crypto Dft Eda_util Fault Hls Iflow List Locking Logic Netlist Physical Power Printf Puf Sat Sidechannel Splitmfg String Synth Threat_model Trojan
