lib/core/composition.ml: Array Eda_util Fault Float List Metric Netlist Power Sidechannel Timing
