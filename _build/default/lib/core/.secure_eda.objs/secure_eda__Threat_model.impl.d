lib/core/threat_model.ml:
