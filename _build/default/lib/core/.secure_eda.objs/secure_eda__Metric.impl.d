lib/core/metric.ml: Float Format List
