(** The end-to-end EDA flow of Fig. 1, and its security-centric
    counterpart. The classical flow optimizes PPA and is provably oblivious
    to security artifacts in the design; the secure flow threads a security
    context (protection barriers, countermeasure inventory, threat-model
    checks) through every stage and re-evaluates after each one. *)

module Circuit = Netlist.Circuit
module Rng = Eda_util.Rng

type stage = Logic_synthesis | Physical_synthesis | Timing_power_verification | Testing

let stage_name = function
  | Logic_synthesis -> "logic synthesis"
  | Physical_synthesis -> "physical synthesis (place)"
  | Timing_power_verification -> "timing/power verification"
  | Testing -> "testing (ATPG)"

type stage_report = {
  stage : stage;
  area : float;
  delay_ps : float;
  wirelength : int option;  (* after placement *)
  fault_coverage : float option;  (* after ATPG *)
  note : string;
}

type flow_report = {
  stages : stage_report list;
  final : Circuit.t;
}

(** Classical flow (Fig. 1): synthesize -> place -> verify timing/power ->
    generate tests. [protect] empty = fully security-oblivious. *)
let run rng ?(protect = fun (_ : string) -> false) circuit =
  let reports = ref [] in
  let report stage c ?wirelength ?fault_coverage note =
    let ppa = Synth.Flow.ppa c in
    reports :=
      { stage;
        area = ppa.Synth.Flow.area;
        delay_ps = ppa.Synth.Flow.delay_ps;
        wirelength;
        fault_coverage;
        note }
      :: !reports
  in
  (* Logic synthesis. *)
  let synthesized =
    if protect == Synth.Rewrite.no_protection then Synth.Flow.optimize circuit
    else Synth.Flow.optimize_secure ~protect circuit
  in
  report Logic_synthesis synthesized "constant-prop + strash + xor-reassoc";
  (* Physical synthesis: placement; wirelength is the PPA artifact. *)
  let placement = Physical.Placement.place rng ~moves:4000 synthesized in
  report Physical_synthesis synthesized
    ~wirelength:(Physical.Placement.wirelength placement)
    "simulated-annealing placement";
  (* Timing/power verification: STA recorded via ppa; note glitch count on
     a random transition as the power-verification artifact. *)
  let ni = Circuit.num_inputs synthesized in
  let prev = Array.make ni false in
  let next = Array.init ni (fun _ -> Rng.bool rng) in
  let transitions = Timing.Event_sim.cycle synthesized ~prev_inputs:prev ~next_inputs:next in
  let glitches = List.length (Timing.Event_sim.glitching_nodes synthesized transitions) in
  report Timing_power_verification synthesized
    (Printf.sprintf "event-sim: %d transitions, %d glitching nets"
       (List.length transitions) glitches);
  (* Testing: ATPG on the combinational network. *)
  let `Patterns patterns, `Coverage coverage, `Untestable _ = Dft.Atpg.run synthesized in
  report Testing synthesized ~fault_coverage:coverage
    (Printf.sprintf "%d patterns" (List.length patterns));
  { stages = List.rev !reports; final = synthesized }
