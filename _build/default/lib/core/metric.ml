(** The metrics registry of a security-aware flow (Sec. IV): classical PPA
    metrics and security metrics side by side, with the machinery to detect
    the paper's observation that security metrics behave like *step
    functions* of invested effort while cost metrics grow smoothly. *)

type family = Ppa | Security

type t = {
  name : string;
  value : float;
  unit_ : string;
  higher_is_better : bool;
  family : family;
}

let ppa ~name ~value ~unit_ ~higher_is_better =
  { name; value; unit_; higher_is_better; family = Ppa }

let security ~name ~value ~unit_ ~higher_is_better =
  { name; value; unit_; higher_is_better; family = Security }

let pp fmt m =
  Format.fprintf fmt "%-28s %10.3f %-8s (%s, %s)" m.name m.value m.unit_
    (match m.family with Ppa -> "PPA" | Security -> "security")
    (if m.higher_is_better then "higher better" else "lower better")

(** Shape classification of a metric-vs-effort curve: [Step] when most of
    the total change happens in one effort increment, [Smooth] otherwise.
    The paper argues security metrics are step-like — reaching a defense
    threshold buys everything, spending more buys nothing — while PPA
    degrades gradually; design-space exploration must treat the two
    differently. *)
type shape = Step | Smooth

let classify_shape points =
  match points with
  | [] | [ _ ] -> Smooth
  | _ :: _ :: _ ->
    let values = List.map snd points in
    let rec deltas = function
      | a :: (b :: _ as tl) -> Float.abs (b -. a) :: deltas tl
      | [ _ ] | [] -> []
    in
    let ds = deltas values in
    let total = List.fold_left ( +. ) 0.0 ds in
    if total <= 1e-12 then Smooth
    else begin
      let largest = List.fold_left Float.max 0.0 ds in
      if largest /. total > 0.6 then Step else Smooth
    end
