lib/dft/bist.ml: Array Fault Float List Netlist
