lib/dft/scan_attack.ml: Array Crypto Float Netlist Scan
