lib/dft/atpg.ml: Array Fault Float Hashtbl List Netlist Sat Synth
