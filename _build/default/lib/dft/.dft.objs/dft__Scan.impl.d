lib/dft/scan.ml: Array Hashtbl List Netlist Printf
