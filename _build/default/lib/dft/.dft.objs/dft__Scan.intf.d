lib/dft/scan.mli: Netlist
