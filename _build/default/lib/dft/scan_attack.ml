(** Scan-based key recovery [39] against a round-registered AES byte
    datapath ([Crypto.Sbox_circuit.aes_round_registered] with a scan chain
    inserted): the attacker loads a chosen plaintext, runs one functional
    capture cycle — the registers now hold Sbox(p xor k) — then switches to
    test mode and shifts the state out. Inverting the S-box yields the key
    byte directly. Secure scan scrambles the shifted stream and defeats
    the recovery. *)

module Circuit = Netlist.Circuit

(** Build the scanned device under attack. [key] is the secret AES key
    byte, wired into the data inputs by the attack driver below (in a real
    chip it comes from key memory; the attacker cannot observe it). *)
let device ?protection () =
  let datapath = Crypto.Sbox_circuit.aes_round_registered () in
  Scan.insert ?protection datapath

(** Run the attack: returns the recovered key byte. The attacker chooses
    plaintext [p], captures, unloads, and computes k = p xor invS(state).
    Works for any plaintext; uses p = 0 so k = invS(state). *)
let recover_key_byte scanned ~key =
  let p = 0 in
  let data =
    Array.append
      (Crypto.Sbox_circuit.byte_to_bits p)
      (Crypto.Sbox_circuit.byte_to_bits key)
  in
  let state0 = Array.make scanned.Scan.num_cells false in
  let state1 = Scan.capture scanned ~state:state0 ~data in
  let stream, _ = Scan.unload scanned ~state:state1 in
  let captured = Crypto.Sbox_circuit.bits_to_byte stream in
  Crypto.Aes.inv_sbox.(captured) lxor p

(** The authorized tester's view: with the fused key known, descrambling
    restores full observability (test quality is preserved). *)
let tester_reads_state scanned ~key =
  let data =
    Array.append (Crypto.Sbox_circuit.byte_to_bits 0) (Crypto.Sbox_circuit.byte_to_bits key)
  in
  let state0 = Array.make scanned.Scan.num_cells false in
  let state1 = Scan.capture scanned ~state:state0 ~data in
  let stream, _ = Scan.unload scanned ~state:state1 in
  let clear = Scan.descramble scanned stream in
  Crypto.Sbox_circuit.bits_to_byte clear

(** Attack success over all 256 keys: fraction recovered exactly. *)
let success_rate scanned =
  let hits = ref 0 in
  for key = 0 to 255 do
    if recover_key_byte scanned ~key = key then incr hits
  done;
  Float.of_int !hits /. 256.0

(* ---- the full-core attack --------------------------------------------- *)

(** The textbook scan attack on a complete AES core: load a chosen
    plaintext (the registers then hold pt XOR k0), switch to test mode,
    shift the 128-bit state out, and XOR with the plaintext — the entire
    128-bit key from one capture. *)
let full_core_device ?protection () =
  let core = Crypto.Aes_core.build () in
  core, Scan.insert ?protection core.Crypto.Aes_core.circuit

(** Recover the full 16-byte key from one load-capture-unload. Inside a
    chip the round key comes from key memory; here it parameterizes the
    simulated device. Chosen plaintext 0 makes the captured state equal
    k0 = the key itself. *)
let recover_full_key (core, scanned) ~key =
  let ks = Crypto.Aes.expand_key key in
  let plaintext = Array.make 16 0 in
  let core_inputs =
    Crypto.Aes_core.input_vector core ~load:true ~final:false ~plaintext ~round_key:ks.(0)
  in
  let state0 = Array.make scanned.Scan.num_cells false in
  let state1 = Scan.capture scanned ~state:state0 ~data:core_inputs in
  let stream, _ = Scan.unload scanned ~state:state1 in
  Crypto.Aes_core.bits_to_block stream

let full_core_attack_succeeds ?protection ~key () =
  let device = full_core_device ?protection () in
  recover_full_key device ~key = key
