(** SAT-based automatic test pattern generation for single stuck-at faults
    on combinational circuits: for each fault, a miter between the clean
    circuit and a faulty copy either yields a detecting pattern or proves
    the fault untestable (redundant logic). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Solver = Sat.Solver
module Cnf = Sat.Cnf

(* A copy of [circuit] with [fault] frozen in: the fault site's cone is
   rebuilt with the node replaced by a constant (stuck-at) — simulated by
   rebuilding with a const node substitution. *)
let faulty_copy circuit fault =
  match (fault : Fault.Model.fault) with
  | Fault.Model.Bit_flip _ -> invalid_arg "Atpg: transient faults have no static copy"
  | Fault.Model.Stuck_at { node; value } ->
    let out = Circuit.create () in
    let n = Circuit.node_count circuit in
    let remap = Array.make n (-1) in
    let name_taken = Hashtbl.create 64 in
    let copy_name i =
      let nm = Circuit.name circuit i in
      if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
      else begin
        Hashtbl.replace name_taken nm ();
        nm
      end
    in
    (* Every node is copied (inputs must survive for interface
       compatibility); the fault site is then shadowed downstream by a
       constant carrying the stuck value. *)
    for i = 0 to n - 1 do
      let nd = Circuit.node circuit i in
      let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
      let id = Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i) in
      remap.(i) <-
        (if i = node then Circuit.add_node_raw out (Gate.Const value) [||] "" else id)
    done;
    Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs circuit);
    out

type pattern_result = Pattern of bool array | Untestable

(** Generate a test for one stuck-at fault. *)
let generate circuit fault =
  let faulty = faulty_copy circuit fault in
  match Cnf.check_equivalence circuit faulty with
  | None -> Untestable
  | Some witness -> Pattern witness

(** Full ATPG run: compact pattern set via greedy fault simulation — each
    new pattern is fault-simulated against the remaining fault list before
    generating tests for survivors. *)
let run circuit =
  let faults = Fault.Model.all_stuck_at_faults circuit in
  let patterns = ref [] in
  let untestable = ref [] in
  let remaining = ref faults in
  while !remaining <> [] do
    match !remaining with
    | [] -> ()
    | fault :: rest ->
      (match generate circuit fault with
       | Untestable ->
         untestable := fault :: !untestable;
         remaining := rest
       | Pattern p ->
         patterns := p :: !patterns;
         (* Drop every other remaining fault this pattern also detects. *)
         remaining := List.filter (fun f -> not (Fault.Model.detects circuit ~fault:f p)) rest)
  done;
  let total = List.length faults in
  let untestable_n = List.length !untestable in
  let coverage =
    if total = 0 then 1.0
    else Float.of_int (total - untestable_n) /. Float.of_int total
  in
  `Patterns (List.rev !patterns), `Coverage coverage, `Untestable !untestable

(** Redundancy removal — the classic synthesis-for-test connection: a node
    whose stuck-at-v fault is untestable can be replaced by the constant v
    without changing the function. Security relevance: redundant logic is
    where lazy watermarks and sloppy Trojans hide, and redundancy also
    caps fault coverage; a clean flow sweeps it. Iterates to a fixed
    point. *)
let remove_redundancy circuit =
  let rec pass c budget =
    if budget = 0 then c
    else begin
      let redundant = ref None in
      let n = Circuit.node_count c in
      let i = ref 0 in
      while !redundant = None && !i < n do
        (match Circuit.kind c !i with
         | Gate.Input | Gate.Const _ | Gate.Dff -> ()
         | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
         | Gate.Xor | Gate.Xnor | Gate.Mux ->
           let try_value value =
             if !redundant = None then
               match generate c (Fault.Model.Stuck_at { node = !i; value }) with
               | Untestable -> redundant := Some (!i, value)
               | Pattern _ -> ()
           in
           try_value false;
           try_value true);
        incr i
      done;
      match !redundant with
      | None -> c
      | Some (node, value) ->
        (* Replace the node with the constant and simplify. *)
        let simplified = Synth.Rewrite.constant_propagation (faulty_copy c (Fault.Model.Stuck_at { node; value })) in
        pass simplified (budget - 1)
    end
  in
  pass circuit 32
