(** Logic built-in self test (Sec. III-F, the DFX infrastructure [58]):
    an LFSR generates pseudo-random patterns on-chip, a MISR compacts the
    responses into a signature, and the chip compares against the golden
    signature — no tester access to internals needed, which is why BIST is
    also the test style most compatible with security (no scan-out of
    secrets). *)

(* Fibonacci LFSR over [width] bits with a primitive-ish tap set. *)
type lfsr = { width : int; taps : int list; mutable state : int }

let default_taps width =
  (* Known maximal-length tap positions for common widths. *)
  match width with
  | 8 -> [ 7; 5; 4; 3 ]
  | 16 -> [ 15; 14; 12; 3 ]
  | 24 -> [ 23; 22; 21; 16 ]
  | 32 -> [ 31; 21; 1; 0 ]
  | _ -> [ width - 1; 0 ]

let lfsr_create ?taps ~width ~seed () =
  assert (seed <> 0);
  { width;
    taps = (match taps with Some t -> t | None -> default_taps width);
    state = seed land ((1 lsl width) - 1) }

let lfsr_step l =
  let fb =
    List.fold_left (fun acc t -> acc lxor ((l.state lsr t) land 1)) 0 l.taps
  in
  l.state <- ((l.state lsl 1) lor fb) land ((1 lsl l.width) - 1);
  l.state

(** Period check helper (maximal-length LFSRs cycle through 2^w - 1). *)
let period ~width ~seed =
  let l = lfsr_create ~width ~seed () in
  let first = l.state in
  let rec go n =
    let s = lfsr_step l in
    if s = first then n else go (n + 1)
  in
  go 1

(* MISR: multiple-input signature register; compacts response vectors. *)
type misr = { m_width : int; mutable signature : int }

let misr_create ~width = { m_width = width; signature = 0 }

let misr_absorb m response =
  (* Rotate-and-xor compaction. *)
  let rot =
    ((m.signature lsl 1) lor (m.signature lsr (m.m_width - 1)))
    land ((1 lsl m.m_width) - 1)
  in
  m.signature <- rot lxor (response land ((1 lsl m.m_width) - 1))

(** Run BIST on a combinational circuit: [patterns] LFSR vectors, MISR over
    the outputs. Returns the signature. *)
let signature ?faults ~patterns ~seed circuit =
  let ni = Netlist.Circuit.num_inputs circuit in
  let no = Netlist.Circuit.num_outputs circuit in
  let l = lfsr_create ~width:(max 2 ni) ~seed () in
  let m = misr_create ~width:(max 2 no) in
  for _ = 1 to patterns do
    let v = lfsr_step l in
    let inputs = Array.init ni (fun k -> (v lsr k) land 1 = 1) in
    let outs =
      match faults with
      | None -> Netlist.Sim.eval circuit inputs
      | Some fs -> Fault.Model.eval_faulty circuit ~faults:fs inputs
    in
    let response = ref 0 in
    for k = no - 1 downto 0 do
      response := (!response lsl 1) lor (if outs.(k) then 1 else 0)
    done;
    misr_absorb m !response
  done;
  m.signature

(** BIST fault coverage: fraction of stuck-at faults whose signature
    differs from golden. *)
let coverage ~patterns ~seed circuit =
  let golden = signature ~patterns ~seed circuit in
  let faults = Fault.Model.all_stuck_at_faults circuit in
  let detected =
    List.length
      (List.filter
         (fun f -> signature ~faults:[ f ] ~patterns ~seed circuit <> golden)
         faults)
  in
  Float.of_int detected /. Float.of_int (List.length faults)
