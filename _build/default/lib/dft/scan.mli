(** Scan-chain insertion and the secure-scan countermeasure. In test mode
    ([scan_en] high) the flip-flops form a shift register, fully
    controllable through [scan_in] and observable through [scan_out] — the
    security problem of [39]. [Secure] scrambles the shift path with a
    fused per-cell key: authorized testers descramble in software,
    attackers read garbage. *)

type protection = Plain | Secure of bool array  (** per-cell scramble key *)

type scanned = {
  circuit : Netlist.Circuit.t;
  protection : protection;
  num_cells : int;
  scan_en_pos : int;
  scan_in_pos : int;
  data_positions : int array;  (** input positions of the original inputs *)
  scan_out_index : int;  (** index into the output vector *)
}

(** Stitch all DFFs into one chain. @raise Assert_failure on circuits
    without flip-flops, or when a [Secure] key length mismatches. *)
val insert : ?protection:protection -> Netlist.Circuit.t -> scanned

(** Full input vector for one cycle of the scanned circuit. *)
val input_vector : scanned -> scan_en:bool -> scan_in:bool -> data:bool array -> bool array

(** One functional (capture) cycle; returns the next register state. *)
val capture : scanned -> state:bool array -> data:bool array -> bool array

(** Shift once per element of [bits]; returns (observed scan_out stream,
    final state). *)
val shift : scanned -> state:bool array -> bits:bool list -> bool list * bool array

(** Unload the register state through the scan port, in cell order. For
    [Secure] chains this is the scrambled stream. *)
val unload : scanned -> state:bool array -> bool array * bool array

(** Authorized-tester descrambling of an unloaded stream. *)
val descramble : scanned -> bool array -> bool array
