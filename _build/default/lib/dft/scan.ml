(** Scan-chain insertion (Fig. 1's testing stage). All flip-flops are
    stitched into a shift register controlled by [scan_en]: in test mode
    the register state is fully controllable through [scan_in] and fully
    observable through [scan_out] — which is exactly the security problem
    of Sec. III-F: a crypto state captured in the flops can be shifted out
    by anyone with test access [39].

    [Secure] mode implements a secure-scan countermeasure: the shift path
    passes through per-cell XOR scrambling with a key fused into the chip
    (tamper-proof, modelled as constant cells). An authorized tester knows
    the key and descrambles the stream in software, retaining full DFX
    observability; an attacker reads garbage [39]. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type protection = Plain | Secure of bool array  (* per-cell scramble key *)

type scanned = {
  circuit : Circuit.t;
  protection : protection;
  num_cells : int;
  (* input positions in the scanned circuit's input vector *)
  scan_en_pos : int;
  scan_in_pos : int;
  data_positions : int array;  (* positions of the original inputs *)
  scan_out_index : int;  (* index in the output vector *)
}

let insert ?(protection = Plain) source =
  let n_cells = Circuit.num_dffs source in
  assert (n_cells > 0);
  let out = Circuit.create () in
  let scan_en = Circuit.add_input ~name:"scan_en" out in
  let scan_in = Circuit.add_input ~name:"scan_in" out in
  let key_cells =
    match protection with
    | Plain -> [||]
    | Secure key ->
      assert (Array.length key = n_cells);
      Array.init n_cells (fun k ->
          Circuit.add_const ~name:(Printf.sprintf "tkey%d" k) out key.(k))
  in
  let n = Circuit.node_count source in
  let remap = Array.make n (-1) in
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name source i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node source i in
    let fanins =
      if nd.Circuit.kind = Gate.Dff then [| 0 |]
      else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
    in
    remap.(i) <- Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i)
  done;
  (* Stitch the chain: cell k shifts from cell k-1 (or scan_in). *)
  let dffs = Circuit.dffs source in
  Array.iteri
    (fun k dff ->
      let normal_d = remap.((Circuit.fanins source dff).(0)) in
      let shift_src = if k = 0 then scan_in else remap.(dffs.(k - 1)) in
      let mux =
        Circuit.add_node_raw out Gate.Mux [| scan_en; normal_d; shift_src |] ""
      in
      Circuit.connect_dff out remap.(dff) ~d:mux)
    dffs;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs source);
  (* Scan output: last cell, optionally scrambled with its key bit. *)
  let last = remap.(dffs.(n_cells - 1)) in
  let scan_out_node =
    match protection with
    | Plain -> Circuit.add_node_raw out Gate.Buf [| last |] "scan_out"
    | Secure _ ->
      (* The scrambling key bit for the cell currently at the output rotates
         as the chain shifts; a simple and effective variant XORs the
         stream with the per-position key bits applied at the output.
         Model: out = last xor tkey applied per cell position; the shifting
         sequence applies tkey[(n-1) - shift] naturally if the tester
         rotates the key. Hardware-wise each cell's shift path XORs its key
         bit, so shifted data is progressively scrambled; here we scramble
         at the output with cell n-1's key slot, and stitch per-cell XORs
         into the shift path for the rest. *)
      Circuit.add_node_raw out Gate.Xor [| last; key_cells.(n_cells - 1) |] "scan_out"
  in
  (* For Secure: scramble every inter-cell shift link too. *)
  (match protection with
   | Plain -> ()
   | Secure _ ->
     Array.iteri
       (fun k dff ->
         if k > 0 then begin
           let cell = remap.(dff) in
           let mux = (Circuit.fanins out cell).(0) in
           (* mux fanins: [scan_en; normal; shift_src]; re-route shift
              through XOR with key bit k-1. *)
           let shift_src = (Circuit.fanins out mux).(2) in
           let scrambled =
             Circuit.add_node_raw out Gate.Xor [| shift_src; key_cells.(k - 1) |] ""
           in
           (* Re-point the mux's shift input. We mutate the fanin array in
              place; the XOR node was appended later, which breaks the
              topological invariant for the mux — but the mux only feeds a
              DFF D-input, and DFF Ds tolerate forward references. To stay
              well-formed, rebuild the mux instead. *)
           let new_mux =
             Circuit.add_node_raw out Gate.Mux
               [| (Circuit.fanins out mux).(0); (Circuit.fanins out mux).(1); scrambled |]
               ""
           in
           Circuit.connect_dff out cell ~d:new_mux
         end)
       dffs);
  Circuit.set_output out "scan_out" scan_out_node;
  let input_pos =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs out);
    fun id -> Hashtbl.find tbl id
  in
  let data_positions =
    Array.map
      (fun id ->
        match Circuit.find_by_name out (Circuit.name source id) with
        | Some nid -> input_pos nid
        | None -> assert false)
      (Circuit.inputs source)
  in
  let scan_out_index =
    let outs = Circuit.outputs out in
    let rec find k = if fst outs.(k) = "scan_out" then k else find (k + 1) in
    find 0
  in
  { circuit = out;
    protection;
    num_cells = n_cells;
    scan_en_pos = input_pos scan_en;
    scan_in_pos = input_pos scan_in;
    data_positions;
    scan_out_index }

(** Build a full input vector for the scanned circuit. *)
let input_vector scanned ~scan_en ~scan_in ~data =
  let vec = Array.make (Circuit.num_inputs scanned.circuit) false in
  vec.(scanned.scan_en_pos) <- scan_en;
  vec.(scanned.scan_in_pos) <- scan_in;
  Array.iteri (fun k pos -> vec.(pos) <- data.(k)) scanned.data_positions;
  vec

(** One functional (capture) cycle. *)
let capture scanned ~state ~data =
  let vec = input_vector scanned ~scan_en:false ~scan_in:false ~data in
  snd (Netlist.Sim.step scanned.circuit ~state vec)

(** Shift the chain once per element of [bits], feeding them into scan_in;
    returns the observed scan_out stream and the final state. *)
let shift scanned ~state ~bits =
  let data = Array.make (Array.length scanned.data_positions) false in
  let observed = ref [] in
  let state = ref state in
  List.iter
    (fun b ->
      let vec = input_vector scanned ~scan_en:true ~scan_in:b ~data in
      let outs, next = Netlist.Sim.step scanned.circuit ~state:!state vec in
      observed := outs.(scanned.scan_out_index) :: !observed;
      state := next)
    bits;
  List.rev !observed, !state

(** Unload the full register state through the scan port; the result is in
    cell order (cell 0 first). For [Secure] chains this is the *scrambled*
    stream; [descramble] recovers the true state given the key. *)
let unload scanned ~state =
  let zeros = List.init scanned.num_cells (fun _ -> false) in
  let observed, state' = shift scanned ~state ~bits:zeros in
  (* The first observed bit is the last cell's content. *)
  Array.of_list (List.rev observed), state'

(** Authorized-tester descrambling of an unloaded stream. The stream bit
    for cell k passed through the XORs of cells k..n-1 on its way out. *)
let descramble scanned stream =
  match scanned.protection with
  | Plain -> Array.copy stream
  | Secure key ->
    let n = scanned.num_cells in
    Array.init n (fun k ->
        let acc = ref stream.(k) in
        for j = k to n - 1 do
          if key.(j) then acc := not !acc
        done;
        !acc)
