(** True-random-number-generator behavioural model with injectable defects
    ([41]; Table II, high-level synthesis row). A physical entropy source
    is never perfectly uniform: it has bias, serial correlation, and can
    fail outright (oscillator lock-in). Security-driven HLS must pair the
    source with online health tests; the tests below are the SP 800-22-lite
    battery the paper's RNG citation describes. *)

module Rng = Eda_util.Rng

type source = {
  bias : float;  (* P(bit = 1) *)
  correlation : float;  (* probability of repeating the previous bit *)
  mutable last : bool;
  rng : Rng.t;
}

let create ?(bias = 0.5) ?(correlation = 0.0) rng =
  { bias; correlation; last = false; rng }

let next_bit s =
  let b =
    if Rng.float s.rng < s.correlation then s.last
    else Rng.float s.rng < s.bias
  in
  s.last <- b;
  b

let bits s n = Array.init n (fun _ -> next_bit s)

(** A locked-up source: constant output (total entropy failure). *)
let stuck value =
  { bias = (if value then 1.0 else 0.0); correlation = 1.0; last = value; rng = Rng.create 0 }
