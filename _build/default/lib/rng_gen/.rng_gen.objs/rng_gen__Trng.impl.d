lib/rng_gen/trng.ml: Array Eda_util
