lib/rng_gen/health.ml: Array Float List Trng
