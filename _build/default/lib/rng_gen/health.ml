(** Statistical health tests for entropy sources — SP 800-22-style monobit,
    runs, poker and longest-run tests, plus an online monitor suitable for
    the always-on health checking a security-aware DFX infrastructure
    integrates (Sec. III-F). Each test returns a score and a pass/fail
    against conventional thresholds for the given sample size. *)

type verdict = { name : string; statistic : float; pass : bool }

(** Monobit: |#ones - n/2| normalized; fails on bias. *)
let monobit bits =
  let n = Array.length bits in
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  let s = Float.abs (Float.of_int ((2 * ones) - n)) /. sqrt (Float.of_int n) in
  (* s ~ |N(0,1)|; 3.29 is the 0.001 two-sided quantile. *)
  { name = "monobit"; statistic = s; pass = s < 3.29 }

(** Runs test: number of value alternations vs expectation; fails on
    correlation (too few runs) or oscillation (too many). *)
let runs bits =
  let n = Array.length bits in
  let pi =
    Float.of_int (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits)
    /. Float.of_int n
  in
  if Float.abs (pi -. 0.5) > 0.2 then { name = "runs"; statistic = Float.infinity; pass = false }
  else begin
    let v = ref 1 in
    for i = 1 to n - 1 do
      if bits.(i) <> bits.(i - 1) then incr v
    done;
    let expected = 2.0 *. Float.of_int n *. pi *. (1.0 -. pi) in
    let sd = 2.0 *. sqrt (2.0 *. Float.of_int n) *. pi *. (1.0 -. pi) in
    let s = Float.abs (Float.of_int !v -. expected) /. Float.max sd 1e-9 in
    { name = "runs"; statistic = s; pass = s < 3.29 }
  end

(** Poker test (4-bit blocks): chi-squared statistic over nibble counts. *)
let poker bits =
  let n = Array.length bits / 4 in
  if n < 16 then { name = "poker"; statistic = 0.0; pass = true }
  else begin
    let counts = Array.make 16 0 in
    for b = 0 to n - 1 do
      let v = ref 0 in
      for k = 0 to 3 do
        v := (!v lsl 1) lor (if bits.((4 * b) + k) then 1 else 0)
      done;
      counts.(!v) <- counts.(!v) + 1
    done;
    let x =
      (16.0 /. Float.of_int n
       *. Array.fold_left (fun acc c -> acc +. Float.of_int (c * c)) 0.0 counts)
      -. Float.of_int n
    in
    (* chi-squared with 15 dof: 0.001 quantile ~ 37.7. *)
    { name = "poker"; statistic = x; pass = x < 37.7 }
  end

(** Longest run of ones; fails when far from the log2(n) expectation. *)
let longest_run bits =
  let n = Array.length bits in
  let best = ref 0 and cur = ref 0 in
  Array.iter
    (fun b ->
      if b then begin
        incr cur;
        if !cur > !best then best := !cur
      end
      else cur := 0)
    bits;
  let expected = log (Float.of_int n) /. log 2.0 in
  let s = Float.abs (Float.of_int !best -. expected) in
  { name = "longest_run"; statistic = s; pass = s < 6.0 }

let battery bits = [ monobit bits; runs bits; poker bits; longest_run bits ]

let all_pass bits = List.for_all (fun v -> v.pass) (battery bits)

(** Online monitor: sliding-window health checking; raises an alarm count
    over a stream, as an on-chip monitor would. *)
let online_monitor source ~window ~windows =
  let alarms = ref 0 in
  for _ = 1 to windows do
    let chunk = Trng.bits source window in
    if not (all_pass chunk) then incr alarms
  done;
  !alarms
