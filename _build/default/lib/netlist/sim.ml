(** Functional simulation of circuits: single-pattern, bit-parallel
    (63 patterns per machine word) and multi-cycle sequential. *)

(** Values of every net for one input assignment; DFF outputs come from
    [state] (all-false when absent). *)
let eval_all ?state circuit inputs =
  let n = Circuit.node_count circuit in
  let values = Array.make n false in
  let input_ids = Circuit.inputs circuit in
  assert (Array.length inputs = Array.length input_ids);
  Array.iteri (fun k id -> values.(id) <- inputs.(k)) input_ids;
  (match state with
   | None -> ()
   | Some st ->
     let dff_ids = Circuit.dffs circuit in
     assert (Array.length st = Array.length dff_ids);
     Array.iteri (fun k id -> values.(id) <- st.(k)) dff_ids);
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff -> ()
    | k -> values.(i) <- Gate.eval k (Array.map (fun f -> values.(f)) nd.Circuit.fanins)
  done;
  values

(** Primary outputs for one input assignment. *)
let eval ?state circuit inputs =
  let values = eval_all ?state circuit inputs in
  Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit)

(** Outputs as an integer, bit 0 being the first declared output. *)
let eval_int ?state circuit inputs =
  let outs = eval ?state circuit inputs in
  let v = ref 0 in
  for i = Array.length outs - 1 downto 0 do
    v := (!v lsl 1) lor (if outs.(i) then 1 else 0)
  done;
  !v

(** Bit-parallel evaluation: each input is a word carrying up to 63
    independent patterns; returns all net words. *)
let eval_all_word ?state circuit (inputs : int array) =
  let n = Circuit.node_count circuit in
  let values = Array.make n 0 in
  let input_ids = Circuit.inputs circuit in
  assert (Array.length inputs = Array.length input_ids);
  Array.iteri (fun k id -> values.(id) <- inputs.(k)) input_ids;
  (match state with
   | None -> ()
   | Some st ->
     let dff_ids = Circuit.dffs circuit in
     Array.iteri (fun k id -> values.(id) <- st.(k)) dff_ids);
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff -> ()
    | k -> values.(i) <- Gate.eval_word k (Array.map (fun f -> values.(f)) nd.Circuit.fanins)
  done;
  values

let eval_word ?state circuit inputs =
  let values = eval_all_word ?state circuit inputs in
  Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit)

(** One clock cycle of a sequential circuit: returns (outputs, next state). *)
let step circuit ~state inputs =
  let values = eval_all ~state circuit inputs in
  let outs = Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit) in
  let next = Array.map (fun id -> values.((Circuit.fanins circuit id).(0))) (Circuit.dffs circuit) in
  outs, next

(** Run a sequence of input vectors from the all-zero state; returns the
    output trace. *)
let run circuit input_seq =
  let state = ref (Array.make (Circuit.num_dffs circuit) false) in
  List.map
    (fun inputs ->
      let outs, next = step circuit ~state:!state inputs in
      state := next;
      outs)
    input_seq

(** Truth table of output [k] (combinational circuits, <= 16 inputs). *)
let truth_table circuit ~output =
  let ni = Circuit.num_inputs circuit in
  assert (ni <= 16);
  Logic.Truth_table.create ni (fun m ->
      let inputs = Array.init ni (fun i -> (m lsr i) land 1 = 1) in
      (eval circuit inputs).(output))

(** Exhaustive functional equivalence (combinational, <= 20 inputs). *)
let equivalent_exhaustive a b =
  let ni = Circuit.num_inputs a in
  ni = Circuit.num_inputs b
  && Circuit.num_outputs a = Circuit.num_outputs b
  && ni <= 20
  &&
  let ok = ref true in
  let m = ref 0 in
  let limit = 1 lsl ni in
  while !ok && !m < limit do
    let inputs = Array.init ni (fun i -> (!m lsr i) land 1 = 1) in
    if eval a inputs <> eval b inputs then ok := false;
    incr m
  done;
  !ok

(** Randomized functional equivalence for wider circuits. *)
let equivalent_random rng ~patterns a b =
  let ni = Circuit.num_inputs a in
  ni = Circuit.num_inputs b
  && Circuit.num_outputs a = Circuit.num_outputs b
  &&
  let ok = ref true in
  for _ = 1 to patterns do
    if !ok then begin
      let inputs = Array.init ni (fun _ -> Eda_util.Rng.bool rng) in
      if eval a inputs <> eval b inputs then ok := false
    end
  done;
  !ok

(** Per-node signal probability estimated over random patterns, used for
    rare-signal (Trojan trigger) analysis. *)
let signal_probabilities rng ~patterns circuit =
  let n = Circuit.node_count circuit in
  let ones = Array.make n 0 in
  let ni = Circuit.num_inputs circuit in
  let words = (patterns + 62) / 63 in
  for _ = 1 to words do
    let inputs = Array.init ni (fun _ -> Int64.to_int (Eda_util.Rng.next_int64 rng) land 0x7FFFFFFFFFFFFFFF) in
    let values = eval_all_word circuit inputs in
    for i = 0 to n - 1 do
      ones.(i) <- ones.(i) + Eda_util.Stats.hamming_weight ~bits:63 values.(i)
    done
  done;
  let total = Float.of_int (words * 63) in
  Array.map (fun c -> Float.of_int c /. total) ones
