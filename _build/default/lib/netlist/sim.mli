(** Functional simulation of circuits: single-pattern, bit-parallel
    (63 patterns per machine word) and multi-cycle sequential. *)

(** Values of every net for one input assignment, indexed by node id.
    DFF outputs come from [state] (all-false when absent); inputs follow
    the circuit's input declaration order. *)
val eval_all : ?state:bool array -> Circuit.t -> bool array -> bool array

(** Primary outputs for one input assignment, in output declaration order. *)
val eval : ?state:bool array -> Circuit.t -> bool array -> bool array

(** Outputs packed into an integer, bit 0 being the first declared output. *)
val eval_int : ?state:bool array -> Circuit.t -> bool array -> int

(** Bit-parallel variants: each input word carries up to 63 independent
    patterns. *)
val eval_all_word : ?state:int array -> Circuit.t -> int array -> int array

val eval_word : ?state:int array -> Circuit.t -> int array -> int array

(** One clock cycle of a sequential circuit: (outputs, next DFF state). *)
val step : Circuit.t -> state:bool array -> bool array -> bool array * bool array

(** Run a sequence of input vectors from the all-zero state; returns the
    output trace in order. *)
val run : Circuit.t -> bool array list -> bool array list

(** Truth table of one output (combinational circuits, <= 16 inputs). *)
val truth_table : Circuit.t -> output:int -> Logic.Truth_table.t

(** Exhaustive functional equivalence (combinational, <= 20 inputs). *)
val equivalent_exhaustive : Circuit.t -> Circuit.t -> bool

(** Randomized functional equivalence for wider circuits; sound only in
    the "no counterexample found" direction. *)
val equivalent_random : Eda_util.Rng.t -> patterns:int -> Circuit.t -> Circuit.t -> bool

(** Per-node one-probability estimated over random patterns; the input to
    rare-signal (Trojan trigger) analysis. *)
val signal_probabilities : Eda_util.Rng.t -> patterns:int -> Circuit.t -> float array
