(** Textual netlist format, a superset of the ISCAS [.bench] style:

    {v
    INPUT(a)
    OUTPUT(y)
    w = NAND(a, b)
    y = XOR(w, c)
    s = DFF(y)
    v}

    Gates must appear in topological order except DFF D-inputs, which may
    reference nets defined later (feedback). *)

exception Parse_error of string

val print_circuit : Format.formatter -> Circuit.t -> unit

val to_string : Circuit.t -> string

(** @raise Parse_error on malformed input or undefined nets. *)
val of_string : string -> Circuit.t

val write_file : string -> Circuit.t -> unit

val read_file : string -> Circuit.t
