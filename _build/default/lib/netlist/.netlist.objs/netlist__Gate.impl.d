lib/netlist/gate.ml: Printf Stdlib String
