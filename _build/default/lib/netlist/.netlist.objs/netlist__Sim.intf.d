lib/netlist/sim.mli: Circuit Eda_util Logic
