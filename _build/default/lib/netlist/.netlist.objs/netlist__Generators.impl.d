lib/netlist/generators.ml: Array Circuit Eda_util Gate Hashtbl Lazy List Logic Printf String
