lib/netlist/circuit.mli: Gate
