lib/netlist/sim.ml: Array Circuit Eda_util Float Gate Int64 List Logic
