lib/netlist/gate.mli:
