lib/netlist/io.ml: Array Buffer Circuit Format Fun Gate List Printf String
