(** Quantitative information flow ([47], [48], [49]): how many bits of a
    secret input group does an output reveal? For an attacker observing
    output Y of f(secret S, public P), the leakage for a fixed P is the
    Shannon entropy of the partition S induces on Y (deterministic
    channel): H(Y) with S uniform. Exact model counting over the truth
    table for small cones; the min-entropy variant counts the largest
    preimage class. *)

module Circuit = Netlist.Circuit

(** Partition sizes of secret values by the output vector they produce,
    with public inputs fixed. [secret] and [public] are index lists into
    the input vector. *)
let output_partition circuit ~secret ~public_values =
  let ni = Circuit.num_inputs circuit in
  let ns = List.length secret in
  assert (ns <= 20);
  let counts = Hashtbl.create 64 in
  for sv = 0 to (1 lsl ns) - 1 do
    let inputs = Array.copy public_values in
    assert (Array.length inputs = ni);
    List.iteri (fun bit idx -> inputs.(idx) <- (sv lsr bit) land 1 = 1) secret;
    let out = Netlist.Sim.eval circuit inputs in
    let key = Array.to_list out in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Hashtbl.fold (fun _ c acc -> c :: acc) counts []

(** Shannon leakage in bits: H(Y) for uniform secret (deterministic f). *)
let shannon_leakage circuit ~secret ~public_values =
  let partition = output_partition circuit ~secret ~public_values in
  Eda_util.Stats.entropy_of_counts (Array.of_list partition)

(** Min-entropy leakage: log2(#observable classes) — the multiplicative
    increase in single-guess success probability. *)
let min_entropy_leakage circuit ~secret ~public_values =
  let partition = output_partition circuit ~secret ~public_values in
  log (Float.of_int (List.length partition)) /. log 2.0

(** Residual guessing entropy of the secret after one observation,
    averaged over outputs: H(S) - leakage for the uniform-deterministic
    case equals sum_y (|S_y|/|S|) log2 |S_y|. *)
let residual_entropy circuit ~secret ~public_values =
  let partition = output_partition circuit ~secret ~public_values in
  let total = List.fold_left ( + ) 0 partition in
  List.fold_left
    (fun acc c ->
      if c = 0 then acc
      else begin
        let p = Float.of_int c /. Float.of_int total in
        acc +. (p *. (log (Float.of_int c) /. log 2.0))
      end)
    0.0 partition

(** Leakage averaged over [samples] random public values. *)
let average_shannon_leakage rng circuit ~secret ~samples =
  let ni = Circuit.num_inputs circuit in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    let public_values = Array.init ni (fun _ -> Eda_util.Rng.bool rng) in
    acc := !acc +. shannon_leakage circuit ~secret ~public_values
  done;
  !acc /. Float.of_int samples

(** Approximate Shannon leakage by Monte-Carlo sampling of the secret
    space — the scalable-approximation idea the paper highlights from
    [49]: exact model counting is exponential in the secret width, but the
    output distribution (and hence H(Y)) can be estimated from samples
    with a Miller–Madow bias correction. Usable for secret widths far
    beyond the exact enumerator's ~20-bit limit. *)
let approx_shannon_leakage rng circuit ~secret ~public_values ~samples =
  let counts = Hashtbl.create 256 in
  List.iter
    (fun idx -> assert (idx >= 0 && idx < Circuit.num_inputs circuit))
    secret;
  for _ = 1 to samples do
    let inputs = Array.copy public_values in
    List.iter (fun idx -> inputs.(idx) <- Eda_util.Rng.bool rng) secret;
    let key = Array.to_list (Netlist.Sim.eval circuit inputs) in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  let observed = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let h = Eda_util.Stats.entropy_of_counts (Array.of_list observed) in
  (* Miller–Madow bias correction, in bits: (K - 1) / (2 n ln 2). *)
  let k = Float.of_int (List.length observed) in
  let corrected = h +. ((k -. 1.0) /. (2.0 *. Float.of_int samples *. log 2.0)) in
  Float.min corrected (Float.of_int (List.length secret))
