(** Gate-level information-flow tracking ([14], [47]; Table II, high-level
    synthesis row). Two precision levels:

    - [structural]: a net is tainted if any fanin is tainted — cheap,
      sound, over-approximate (conservative for verification).
    - [glift]: GLIFT-precise propagation — a gate output is tainted only
      if some tainted input can actually change the output given the
      current untainted input values. AND(0, tainted) is *untainted*
      because the 0 dominates. Computed per input vector. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

(** Structural taint: input-independent reachability. *)
let structural circuit ~sources =
  let n = Circuit.node_count circuit in
  let tainted = Array.make n false in
  List.iter (fun s -> tainted.(s) <- true) sources;
  for i = 0 to n - 1 do
    if not tainted.(i) then begin
      let nd = Circuit.node circuit i in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Const _ -> ()
      | Gate.Dff | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
      | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux ->
        if Array.exists (fun f -> tainted.(f)) nd.Circuit.fanins then
          tainted.(i) <- true
    end
  done;
  tainted

(** GLIFT-precise taint for a specific input vector: output is tainted iff
    flipping some subset of tainted inputs flips the output. For 2-3 input
    gates, checked exhaustively over the tainted fanins. *)
let glift circuit ~sources inputs =
  let n = Circuit.node_count circuit in
  let values = Netlist.Sim.eval_all circuit inputs in
  let tainted = Array.make n false in
  List.iter (fun s -> tainted.(s) <- true) sources;
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Const _ | Gate.Dff -> ()
    | k ->
      if not tainted.(i) then begin
        let fanins = nd.Circuit.fanins in
        let tainted_idx =
          List.filter (fun p -> tainted.(fanins.(p))) (List.init (Array.length fanins) (fun p -> p))
        in
        if tainted_idx <> [] then begin
          (* Try all assignments of the tainted fanins; untainted fanins
             keep their simulated values. *)
          let base = Array.map (fun f -> values.(f)) fanins in
          let out0 = Gate.eval k base in
          let changes = ref false in
          let m = List.length tainted_idx in
          for mask = 1 to (1 lsl m) - 1 do
            let trial = Array.copy base in
            List.iteri
              (fun bit p -> if (mask lsr bit) land 1 = 1 then trial.(p) <- not trial.(p))
              tainted_idx;
            if Gate.eval k trial <> out0 then changes := true
          done;
          tainted.(i) <- !changes
        end
      end
  done;
  tainted

(** Does taint from [sources] reach output [output] for some input?
    Checked by sampling with [glift]; sound "no" requires [structural]. *)
let leaks_to_output rng circuit ~sources ~output ~samples =
  let o = (Circuit.output_ids circuit).(output) in
  let structural_taint = structural circuit ~sources in
  if not structural_taint.(o) then `Never
  else begin
    let ni = Circuit.num_inputs circuit in
    let hit = ref false in
    for _ = 1 to samples do
      if not !hit then begin
        let inputs = Array.init ni (fun _ -> Eda_util.Rng.bool rng) in
        if (glift circuit ~sources inputs).(o) then hit := true
      end
    done;
    if !hit then `Leaks else `Structural_only
  end
