(** Architectural covert/side channels ([31], [3]; Table II, functional-
    validation row): a toy direct-mapped cache model demonstrating the
    timing channel that unique-program-execution checking targets. A victim
    access pattern depends on a secret; an attacker sharing the cache
    measures hit/miss timing of its own probes and reconstructs the
    secret-dependent set index — the prime+probe primitive. *)

module Rng = Eda_util.Rng

type cache = {
  sets : int;
  mutable lines : int array;  (* tag per set; -1 = empty *)
}

let create ~sets = { sets; lines = Array.make sets (-1) }

type access = Hit | Miss

let access cache ~address =
  let set = address mod cache.sets in
  let tag = address / cache.sets in
  if cache.lines.(set) = tag then Hit
  else begin
    cache.lines.(set) <- tag;
    Miss
  end

(** Victim: accesses a table entry indexed by the secret (e.g. an S-box
    lookup with a secret-dependent index). *)
let victim_access cache ~secret = ignore (access cache ~address:secret)

(** Prime+probe attack: prime all sets, let the victim run, probe and
    observe which set misses. Recovers [secret mod sets]. *)
let prime_probe cache ~run_victim =
  (* Prime: fill every set with an attacker tag. *)
  for s = 0 to cache.sets - 1 do
    ignore (access cache ~address:((1000 * cache.sets) + s))
  done;
  run_victim ();
  (* Probe: the set the victim touched now misses for the attacker. *)
  let evicted = ref [] in
  for s = 0 to cache.sets - 1 do
    match access cache ~address:((1000 * cache.sets) + s) with
    | Miss -> evicted := s :: !evicted
    | Hit -> ()
  done;
  !evicted

(** Recovery success rate of the secret's set index over trials. *)
let attack_success rng ~sets ~trials =
  let correct = ref 0 in
  for _ = 1 to trials do
    let cache = create ~sets in
    let secret = Rng.int rng sets in
    let evicted = prime_probe cache ~run_victim:(fun () -> victim_access cache ~secret) in
    match evicted with
    | [ s ] when s = secret -> incr correct
    | [] | [ _ ] | _ :: _ :: _ -> ()
  done;
  Float.of_int !correct /. Float.of_int trials

(** Countermeasure: randomized set-index mapping per context (a simple
    cache-randomization defense); attack success collapses to chance. *)
let attack_success_randomized rng ~sets ~trials =
  let correct = ref 0 in
  for _ = 1 to trials do
    let cache = create ~sets in
    let secret = Rng.int rng sets in
    (* The victim's mapping is permuted; attacker's probes use identity. *)
    let permutation = Array.init sets (fun i -> i) in
    Rng.shuffle rng permutation;
    let evicted =
      prime_probe cache ~run_victim:(fun () ->
          victim_access cache ~secret:(permutation.(secret)))
    in
    match evicted with
    | [ s ] when s = secret -> incr correct
    | [] | [ _ ] | _ :: _ :: _ -> ()
  done;
  Float.of_int !correct /. Float.of_int trials
