lib/iflow/qif.mli: Eda_util Netlist
