lib/iflow/taint.ml: Array Eda_util List Netlist
