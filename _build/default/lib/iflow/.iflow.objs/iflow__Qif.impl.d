lib/iflow/qif.ml: Array Eda_util Float Hashtbl List Netlist Option
