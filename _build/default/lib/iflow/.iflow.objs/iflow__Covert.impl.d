lib/iflow/covert.ml: Array Eda_util Float
