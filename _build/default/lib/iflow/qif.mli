(** Quantitative information flow ([47], [48], [49]): how many bits of a
    secret input group an output reveals, by exact model counting for
    small secrets and Monte-Carlo estimation beyond. *)

(** Sizes of the partition the output vector induces on the secret space
    (public inputs fixed to [public_values]). Secret width <= 20. *)
val output_partition :
  Netlist.Circuit.t -> secret:int list -> public_values:bool array -> int list

(** Shannon leakage H(Y) in bits, uniform secret, deterministic circuit. *)
val shannon_leakage :
  Netlist.Circuit.t -> secret:int list -> public_values:bool array -> float

(** log2 of the number of distinguishable output classes. *)
val min_entropy_leakage :
  Netlist.Circuit.t -> secret:int list -> public_values:bool array -> float

(** Expected residual entropy of the secret after one observation. *)
val residual_entropy :
  Netlist.Circuit.t -> secret:int list -> public_values:bool array -> float

(** [shannon_leakage] averaged over random public values. *)
val average_shannon_leakage :
  Eda_util.Rng.t -> Netlist.Circuit.t -> secret:int list -> samples:int -> float

(** Monte-Carlo estimate with Miller–Madow bias correction — the scalable
    approximation of [49]; usable far beyond the exact 20-bit limit. *)
val approx_shannon_leakage :
  Eda_util.Rng.t ->
  Netlist.Circuit.t ->
  secret:int list ->
  public_values:bool array ->
  samples:int ->
  float
