lib/physical/placement.ml: Array Eda_util List Netlist
