lib/physical/shield.ml: Array Eda_util Float List Placement
