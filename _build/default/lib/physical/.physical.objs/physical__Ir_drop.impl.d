lib/physical/ir_drop.ml: Array Eda_util Float List Netlist Placement Timing
