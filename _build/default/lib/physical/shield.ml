(** Active probing shield ([29]; Table II, physical-synthesis x FIA cell):
    a serpentine mesh of monitored wires on the top metal layer(s) covers
    the die; a micro-probing or laser fault-injection attempt must cut or
    touch mesh lines, which the integrity checker detects.

    Model: the die is a [cols] x [rows] grid; the shield covers a fraction
    of columns with monitored lines of [pitch] grid units. A probe of
    radius [r] at a target cell touches the mesh if any covered line is
    within r. Metrics: coverage (fraction of placed cells protected) and
    detection probability of an attack campaign against chosen targets. *)

module Rng = Eda_util.Rng

type t = {
  cols : int;
  rows : int;
  pitch : int;  (* distance between adjacent shield lines, >= 1 *)
  offset : int;  (* position of the first line *)
}

let build ~cols ~rows ~pitch ~offset =
  assert (pitch >= 1);
  { cols; rows; pitch; offset = offset mod pitch }

(* Shield lines run vertically at columns offset, offset+pitch, ... *)
let nearest_line_distance shield x =
  let m = (x - shield.offset) mod shield.pitch in
  let m = if m < 0 then m + shield.pitch else m in
  min m (shield.pitch - m)

(** Does a probe of radius [r] at (x, _) touch a shield line? *)
let probe_detected shield ~r (x, _y) = nearest_line_distance shield x <= r

(** Fraction of placement sites where a radius-[r] probe is detected. *)
let coverage shield ~r =
  let covered = ref 0 in
  for x = 0 to shield.cols - 1 do
    if probe_detected shield ~r (x, 0) then incr covered
  done;
  Float.of_int !covered /. Float.of_int shield.cols

(** Attack campaign: the adversary probes the placed locations of chosen
    target nodes (e.g. key registers); returns the detection rate. *)
let attack_detection_rate shield ~r placement ~targets =
  match targets with
  | [] -> 1.0
  | _ :: _ ->
    let detected =
      List.length
        (List.filter
           (fun node ->
             probe_detected shield ~r placement.Placement.position.(node))
           targets)
    in
    Float.of_int detected /. Float.of_int (List.length targets)

(** Area overhead proxy: one routing track consumed per shield line. *)
let track_overhead shield =
  Float.of_int ((shield.cols + shield.pitch - 1) / shield.pitch)
  /. Float.of_int shield.cols
