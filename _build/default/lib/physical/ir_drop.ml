(** Power-grid IR-drop verification ([36]; the paper's timing-and-power-
    verification stage distinguishes *simulation* from *vectorless*
    analytical bounds — both are implemented here on a simple resistive
    grid model).

    The die is a grid of cells fed from pads at the four corners through a
    mesh of unit resistances. Each placed cell draws current proportional
    to its switching activity. The grid voltage is solved by Jacobi
    iteration of the discrete Poisson equation; the IR drop at a cell is
    Vdd minus its node voltage.

    - [simulate] uses per-cell activity from an actual input-vector pair
      (event simulation), the "simulation" flavour;
    - [vectorless_bound] uses each cell's maximum possible current (every
      gate toggles), a sound upper bound independent of vectors. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type grid = {
  cols : int;
  rows : int;
  drop : float array;  (* per grid node, in volts *)
  worst : float;
}

(* Solve the grid: pads (corners) are fixed at 0 drop; interior node drop
   is the average of neighbours plus a term proportional to local
   current draw. *)
let solve ~cols ~rows ~current ~iterations ~resistance =
  let idx x y = (y * cols) + x in
  let drop = Array.make (cols * rows) 0.0 in
  let is_pad x y =
    (x = 0 || x = cols - 1) && (y = 0 || y = rows - 1)
  in
  for _ = 1 to iterations do
    for y = 0 to rows - 1 do
      for x = 0 to cols - 1 do
        if not (is_pad x y) then begin
          let neighbours = ref [] in
          if x > 0 then neighbours := drop.(idx (x - 1) y) :: !neighbours;
          if x < cols - 1 then neighbours := drop.(idx (x + 1) y) :: !neighbours;
          if y > 0 then neighbours := drop.(idx x (y - 1)) :: !neighbours;
          if y < rows - 1 then neighbours := drop.(idx x (y + 1)) :: !neighbours;
          let avg =
            List.fold_left ( +. ) 0.0 !neighbours /. Float.of_int (List.length !neighbours)
          in
          drop.(idx x y) <- avg +. (resistance *. current.(idx x y))
        end
      done
    done
  done;
  let worst = Array.fold_left Float.max 0.0 drop in
  { cols; rows; drop; worst }

(* Per-grid-node current from per-cell energies under a placement. *)
let current_map placement energies =
  let cols = placement.Placement.cols in
  let rows = placement.Placement.rows in
  let current = Array.make (cols * rows) 0.0 in
  Array.iteri
    (fun node (x, y) ->
      if node < Array.length energies then
        current.((y * cols) + x) <- current.((y * cols) + x) +. energies.(node))
    placement.Placement.position;
  cols, rows, current

(** IR-drop for one simulated transition (vector-driven analysis). *)
let simulate ?(iterations = 200) ?(resistance = 0.01) placement ~prev_inputs ~next_inputs =
  let c = placement.Placement.circuit in
  let transitions = Timing.Event_sim.cycle c ~prev_inputs ~next_inputs in
  let energies = Array.make (Circuit.node_count c) 0.0 in
  List.iter
    (fun tr ->
      let node = tr.Timing.Event_sim.node in
      energies.(node) <- energies.(node) +. Gate.switch_energy (Circuit.kind c node))
    transitions;
  let cols, rows, current = current_map placement energies in
  solve ~cols ~rows ~current ~iterations ~resistance

(** Vectorless worst-case bound: every cell assumed to toggle [activity]
    times per cycle. The activity cap is the analyst's model input — with
    glitching logic a cap of 1 is *unsound* (the event simulation can
    exceed it), which is exactly the accuracy-of-models caveat the paper
    raises for timing/power verification. *)
let vectorless_bound ?(iterations = 200) ?(resistance = 0.01) ?(activity = 3.0) placement =
  let c = placement.Placement.circuit in
  let energies =
    Array.init (Circuit.node_count c) (fun i ->
        activity *. Gate.switch_energy (Circuit.kind c i))
  in
  let cols, rows, current = current_map placement energies in
  solve ~cols ~rows ~current ~iterations ~resistance

(** Verification verdict: the vectorless bound vs budget, plus a
    simulation cross-check — if any simulated vector exceeds the bound,
    the activity model was too optimistic and the sign-off is unsound. *)
let verify rng ?(vectors = 20) ?activity placement ~budget =
  let c = placement.Placement.circuit in
  let ni = Circuit.num_inputs c in
  let bound = vectorless_bound ?activity placement in
  let worst_simulated = ref 0.0 in
  for _ = 1 to vectors do
    let prev = Array.init ni (fun _ -> Eda_util.Rng.bool rng) in
    let next = Array.init ni (fun _ -> Eda_util.Rng.bool rng) in
    let g = simulate placement ~prev_inputs:prev ~next_inputs:next in
    if g.worst > !worst_simulated then worst_simulated := g.worst
  done;
  ( `Bound bound.worst,
    `Worst_simulated !worst_simulated,
    `Meets_budget (bound.worst <= budget),
    `Activity_model_sound (!worst_simulated <= bound.worst) )
