(** Deterministic pseudo-random number generation.

    All stochastic components of the toolkit draw randomness through an
    explicit [t] so that every experiment is reproducible from a seed.
    The generator is xoshiro256** seeded through splitmix64, implemented
    from the public-domain reference algorithms. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next step. *)
let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(** [int t bound] draws uniformly from [0, bound). *)
let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Uniform float in [0, 1). *)
let float t =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  mantissa *. (1.0 /. 9007199254740992.0)

(** Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max (float t) 1e-300 in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

(** Fisher-Yates shuffle in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [sample t k n] draws [k] distinct indices from [0, n). *)
let sample t k n =
  assert (k <= n);
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.sub arr 0 k

(** [choose t lst] picks one element of a non-empty list. *)
let choose t lst =
  match lst with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ :: _ -> List.nth lst (int t (List.length lst))

(** Independent stream derived from [t]; lets subsystems fork their own
    generator without coupling their draw sequences. *)
let split t = create (Int64.to_int (next_int64 t))
