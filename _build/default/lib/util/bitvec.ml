(** Fixed-width bit vectors over [bool array], with helpers for the
    integer <-> vector conversions used by circuit simulation, and a packed
    64-bit variant for bit-parallel simulation. *)

type t = bool array

let create width value = Array.make width value

let of_int ~width x =
  Array.init width (fun i -> (x lsr i) land 1 = 1)

let to_int bv =
  let v = ref 0 in
  for i = Array.length bv - 1 downto 0 do
    v := (!v lsl 1) lor (if bv.(i) then 1 else 0)
  done;
  !v

let width = Array.length

let get (bv : t) i = bv.(i)

let set (bv : t) i b = bv.(i) <- b

let copy = Array.copy

let equal a b = a = (b : t)

let hamming_weight bv =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bv

let hamming_distance a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    if a.(i) <> b.(i) then incr acc
  done;
  !acc

let xor a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> a.(i) <> b.(i))

let random rng w = Array.init w (fun _ -> Rng.bool rng)

let to_string bv =
  String.init (Array.length bv) (fun i ->
      if bv.(Array.length bv - 1 - i) then '1' else '0')

let of_string s =
  let w = String.length s in
  Array.init w (fun i ->
      match s.[w - 1 - i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %c" c))

(** All [2^width] vectors in ascending integer order; only for small widths. *)
let enumerate ~width:w =
  assert (w <= 20);
  List.init (1 lsl w) (fun x -> of_int ~width:w x)

(** Flip bit [i], returning a fresh vector. *)
let flip bv i =
  let c = Array.copy bv in
  c.(i) <- not c.(i);
  c
