lib/util/bitvec.ml: Array List Printf Rng String
