lib/util/rng.mli:
