lib/sat/cnf.ml: Array List Netlist Solver
