lib/sat/cnf.mli: Netlist Solver
