lib/sat/solver.mli:
