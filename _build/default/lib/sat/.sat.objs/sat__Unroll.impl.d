lib/sat/unroll.ml: Array Cnf List Netlist Printf Solver
